"""Edge-case and regression tests across modules."""

import pytest

from repro.apps.registry import APPS, build_app
from repro.flow import map_stream_graph
from repro.graph.builder import GraphBuilder, linear_pipeline_graph
from repro.graph.filters import FilterRole, FilterSpec, sink, source
from repro.graph.flatten import flatten
from repro.graph.stream_graph import Channel, StreamGraph
from repro.graph.structure import Filt, Pipeline, pipeline
from repro.graph.validate import collect_problems
from repro.gpu.kernel import KernelConfig
from repro.gpu.memory import PartitionMemory, partition_memory
from repro.gpu.simulator import KernelSimulator
from repro.gpu.specs import C2070, M2090
from repro.gpu.topology import default_topology
from repro.partition.heuristic import PartitioningResult, partition_stream_graph
from repro.perf.engine import PerformanceEstimationEngine
from repro.runtime.executor import measure_partitions
from repro.runtime.fragments import DEFAULT_PLAN, FragmentPlan


class TestGraphEdgeCases:
    def test_channel_rejects_zero_rates(self):
        with pytest.raises(ValueError):
            Channel(0, 1, src_push=0, dst_pop=1)
        with pytest.raises(ValueError):
            Channel(0, 1, src_push=1, dst_pop=0)
        Channel(0, 1, src_push=1, dst_pop=1)  # fine

    def test_channel_peek_below_pop_rejected(self):
        with pytest.raises(ValueError):
            Channel(0, 1, src_push=4, dst_pop=4, dst_peek=2)

    def test_add_channel_range_checked(self):
        g = StreamGraph("x")
        g.add_node(FilterSpec(name="a", pop=0, push=1))
        with pytest.raises(ValueError):
            g.add_channel(0, 3, 1, 1)

    def test_node_by_name_missing(self):
        g = linear_pipeline_graph("x", stages=1)
        with pytest.raises(KeyError):
            g.node_by_name("ghost")

    def test_collect_problems_empty_graph(self):
        assert collect_problems(StreamGraph("void")) == ["graph is empty"]

    def test_collect_problems_lists_unsolved_rates(self):
        g = StreamGraph("u")
        g.add_node(FilterSpec(name="a", pop=0, push=1))
        problems = collect_problems(g)
        assert any("firing rates" in p for p in problems)

    def test_filterspec_validation(self):
        with pytest.raises(ValueError):
            FilterSpec(name="bad", pop=-1, push=0)
        with pytest.raises(ValueError):
            FilterSpec(name="bad", pop=2, push=2, peek=1)
        with pytest.raises(ValueError):
            FilterSpec(name="bad", pop=1, push=1, semantics="quantum")

    def test_effective_peek_defaults_to_pop(self):
        spec = FilterSpec(name="f", pop=3, push=1)
        assert spec.effective_peek == 3

    def test_renamed_preserves_fields(self):
        spec = FilterSpec(name="a", pop=2, push=3, work=7.0, stateful=True)
        clone = spec.renamed("b")
        assert clone.name == "b" and clone.work == 7.0 and clone.stateful

    def test_flatten_rejects_sourceless_interior(self):
        # second child consumes nothing -> cannot connect
        with pytest.raises(ValueError):
            flatten(
                pipeline(source("s", 2), Filt(source("s2", 2))), "bad"
            )


class TestMemoryEdgeCases:
    def test_zero_memory_partition(self):
        mem = PartitionMemory(working_set=0, io_in=0, io_out=0)
        assert mem.max_executions(48 * 1024) == 48 * 1024  # degenerate

    def test_empty_member_set(self):
        g = linear_pipeline_graph("m", stages=1)
        mem = partition_memory(g, [])
        assert mem.working_set == 0 and mem.io_bytes == 0

    def test_traffic_excludes_peek_carry(self):
        b = GraphBuilder("peek")
        s = b.filter("s", pop=0, push=8, role=FilterRole.SOURCE)
        f = b.filter("f", pop=1, push=1, peek=16, work=10.0)
        t = b.filter("t", pop=8, push=0, role=FilterRole.SINK)
        b.connect(s, f)
        b.connect(f, t, src_push=1, dst_pop=8)
        g = b.build()
        mem = partition_memory(g, [f])
        assert mem.io_in > mem.io_in_traffic  # buffer holds the window
        assert mem.io_out == mem.io_out_traffic


class TestSimulatorEdgeCases:
    def test_profile_graph_covers_all_nodes(self):
        g = build_app("MatMul2", 2)
        prof = KernelSimulator(M2090).profile_graph(g)
        assert set(prof) == {n.node_id for n in g.nodes}
        assert all(v > 0 for v in prof.values())

    def test_fragment_time_zero_executions(self):
        g = linear_pipeline_graph("z", stages=1)
        sim = KernelSimulator(M2090)
        m = sim.measure(g, [0, 1, 2], KernelConfig(1, 1, 32))
        assert sim.fragment_time(m, 0) == 0.0

    def test_c2070_transfers_slower(self):
        g = linear_pipeline_graph("bw", stages=1, rate=256, work=0.0)
        members = [n.node_id for n in g.nodes]
        cfg = KernelConfig(1, 1, 32)
        fast = KernelSimulator(M2090).measure(g, members, cfg).t_dt
        slow = KernelSimulator(C2070).measure(g, members, cfg).t_dt
        assert slow > fast

    def test_bandwidth_scale_property(self):
        assert M2090.bandwidth_scale == pytest.approx(1.0)
        assert C2070.bandwidth_scale > 1.0


class TestFlowEdgeCases:
    def test_topology_size_mismatch(self):
        g = linear_pipeline_graph("t", stages=2)
        with pytest.raises(ValueError):
            map_stream_graph(g, num_gpus=2, topology=default_topology(4))

    def test_fragment_plan_override(self):
        g = linear_pipeline_graph("fp", stages=2, work=500.0)
        result = map_stream_graph(
            g, num_gpus=1, plan=FragmentPlan(4, 128)
        )
        assert result.report.num_fragments == 4

    def test_default_plan_constant(self):
        assert DEFAULT_PLAN.total_executions == 32 * 128

    def test_measure_partitions_alignment(self):
        g = build_app("MatMul2", 2)
        engine = PerformanceEstimationEngine(g)
        result = map_stream_graph(g, num_gpus=1, engine=engine)
        ms = measure_partitions(result.pdg, engine.simulator, engine)
        assert len(ms) == result.num_partitions


class TestPartitioningEdgeCases:
    def test_single_node_graph(self):
        b = GraphBuilder("one")
        b.filter("only", pop=0, push=4, role=FilterRole.SOURCE)
        g = b.build()
        result = partition_stream_graph(g)
        assert len(result) == 1

    def test_result_helpers(self):
        g = linear_pipeline_graph("h", stages=2, work=100.0)
        result = partition_stream_graph(g)
        assert isinstance(result, PartitioningResult)
        assert result.total_t > 0
        assert 0 <= result.compute_bound_count() <= len(result)
        assert set(result.assignment.values()) == set(range(len(result)))

    def test_invalid_phase_set_is_noop(self):
        g = linear_pipeline_graph("p", stages=2)
        result = partition_stream_graph(g, phases=())
        # no phases: every node its own partition via the fallback
        assert len(result) == len(g.nodes)


class TestRegistryMetadata:
    def test_descriptions_nonempty(self):
        for info in APPS.values():
            assert info.description
            assert info.paper_n == tuple(sorted(info.paper_n))

    def test_builders_reject_nonsense(self):
        for name, info in APPS.items():
            with pytest.raises(ValueError):
                info.build(0 if name not in ("FFT", "Bitonic", "BitonicRec")
                           else 3)
