"""Tests for mapping extensions: broadcasts, heterogeneous GPUs,
contiguous splitting."""

import itertools

import pytest

from repro.gpu.specs import LinkSpec
from repro.gpu.topology import default_topology
from repro.mapping.greedy import contiguous_mapping, lpt_mapping
from repro.mapping.problem import Broadcast, MappingProblem
from repro.mapping.solver_bb import solve_branch_and_bound
from repro.mapping.solver_milp import solve_milp


def _problem(times, edges=None, broadcasts=None, gpus=4, slowdown=None,
             host_io=None):
    return MappingProblem(
        times=list(times),
        edges=dict(edges or {}),
        host_io=list(host_io or [(0.0, 0.0)] * len(times)),
        topology=default_topology(gpus, LinkSpec(6.0, 10_000.0)),
        broadcasts=list(broadcasts or []),
        gpu_slowdown=slowdown,
    )


def _brute_force(problem):
    best, best_assign = float("inf"), None
    for assign in itertools.product(
        range(problem.num_gpus), repeat=problem.num_partitions
    ):
        t = problem.tmax(assign)
        if t < best:
            best, best_assign = t, assign
    return best, best_assign


class TestBroadcastSemantics:
    def test_one_copy_per_destination_gpu(self):
        group = Broadcast(src=0, nbytes=6000.0, destinations=(1, 2, 3))
        p = _problem([1.0] * 4, broadcasts=[group], gpus=2)
        # all destinations on gpu1: one copy crosses, not three
        loads = p.link_loads([0, 1, 1, 1])
        crossing = [v for v in loads if v > 0]
        assert all(v == pytest.approx(6000.0) for v in crossing)

    def test_local_destinations_free(self):
        group = Broadcast(src=0, nbytes=6000.0, destinations=(1, 2))
        p = _problem([1.0] * 3, broadcasts=[group], gpus=2)
        assert all(v == 0.0 for v in p.link_loads([0, 0, 0]))

    def test_two_gpu_destinations_two_copies(self):
        group = Broadcast(src=0, nbytes=6000.0, destinations=(1, 2))
        p = _problem([1.0] * 3, broadcasts=[group], gpus=4)
        # src gpu0, dests on gpu1 and gpu2: gpu0's uplink carries 2 copies
        loads = p.link_loads([0, 1, 2])
        assert max(loads) == pytest.approx(12000.0)

    def test_broadcast_validation(self):
        with pytest.raises(ValueError):
            _problem([1.0], broadcasts=[Broadcast(5, 1.0, (0,))])
        with pytest.raises(ValueError):
            _problem([1.0], broadcasts=[Broadcast(0, 1.0, (9,))])

    def test_milp_matches_brute_force_with_broadcasts(self):
        group = Broadcast(src=0, nbytes=500_000.0, destinations=(1, 2, 3))
        times = [80_000.0, 50_000.0, 50_000.0, 50_000.0]
        p = _problem(times, broadcasts=[group], gpus=2)
        res = solve_milp(p, mip_rel_gap=0.0)
        best, _ = _brute_force(p)
        assert res.tmax == pytest.approx(best, rel=1e-6)

    def test_bb_matches_brute_force_with_broadcasts(self):
        group = Broadcast(src=0, nbytes=400_000.0, destinations=(1, 2))
        times = [60_000.0, 90_000.0, 90_000.0]
        p = _problem(times, broadcasts=[group], gpus=3)
        res = solve_branch_and_bound(p)
        best, _ = _brute_force(p)
        assert res.tmax == pytest.approx(best, rel=1e-6)

    def test_broadcast_cheaper_than_private_edges(self):
        """Dedup must make wide fan-out cheaper than per-edge charging."""
        times = [10.0] * 5
        bcast = _problem(
            times, broadcasts=[Broadcast(0, 60_000.0, (1, 2, 3, 4))], gpus=2
        )
        private = _problem(
            times, edges={(0, j): 60_000.0 for j in range(1, 5)}, gpus=2
        )
        assignment = [0, 1, 1, 1, 1]
        assert max(bcast.link_loads(assignment)) < max(
            private.link_loads(assignment)
        )


class TestHeterogeneous:
    def test_validation(self):
        with pytest.raises(ValueError):
            _problem([1.0], gpus=2, slowdown=[1.0])
        with pytest.raises(ValueError):
            _problem([1.0], gpus=2, slowdown=[1.0, -1.0])

    def test_time_on_scales(self):
        p = _problem([100.0], gpus=2, slowdown=[1.0, 2.0])
        assert p.time_on(0, 0) == 100.0
        assert p.time_on(0, 1) == 200.0

    def test_solver_prefers_fast_gpu(self):
        p = _problem([100.0, 10.0], gpus=2, slowdown=[1.0, 4.0])
        res = solve_milp(p, mip_rel_gap=0.0)
        assert res.assignment[0] == 0  # heavy partition on the fast GPU

    def test_milp_matches_brute_force_heterogeneous(self):
        times = [70_000.0, 50_000.0, 30_000.0, 20_000.0]
        edges = {(0, 1): 120_000.0, (1, 2): 60_000.0, (2, 3): 90_000.0}
        p = _problem(times, edges=edges, gpus=3, slowdown=[1.0, 1.5, 2.0])
        res = solve_milp(p, mip_rel_gap=0.0)
        best, _ = _brute_force(p)
        assert res.tmax == pytest.approx(best, rel=1e-6)

    def test_bb_matches_brute_force_heterogeneous(self):
        times = [70_000.0, 50_000.0, 30_000.0]
        p = _problem(times, gpus=2, slowdown=[1.0, 3.0])
        res = solve_branch_and_bound(p)
        best, _ = _brute_force(p)
        assert res.tmax == pytest.approx(best, rel=1e-6)
        assert res.optimal

    def test_lpt_accounts_for_slowdown(self):
        p = _problem([100.0, 100.0, 100.0, 100.0], gpus=2,
                     slowdown=[1.0, 100.0])
        res = lpt_mapping(p)
        # the slow GPU should receive at most one partition
        assert sum(1 for g in res.assignment if g == 1) <= 1


class TestContiguous:
    def test_chain_gets_exactly_g_blocks(self):
        times = [10.0] * 12
        edges = {(i, i + 1): 1000.0 for i in range(11)}
        p = _problem(times, edges=edges, gpus=4)
        res = contiguous_mapping(p)
        # blocks must be contiguous and in order
        assert list(res.assignment) == sorted(res.assignment)
        assert len(set(res.assignment)) <= 4

    def test_balances_heavy_chain(self):
        times = [30.0, 1.0, 1.0, 30.0, 1.0, 1.0, 30.0]
        p = _problem(times, gpus=3)
        res = contiguous_mapping(p)
        assert max(p.gpu_times(res.assignment)) <= 35.0

    def test_cuts_cost_fewer_links_than_lpt(self):
        times = [10_000.0] * 16
        edges = {(i, i + 1): 500_000.0 for i in range(15)}
        p = _problem(times, edges=edges, gpus=4)
        cont = contiguous_mapping(p)
        lpt = lpt_mapping(p)
        assert max(p.link_loads(cont.assignment)) <= max(
            p.link_loads(lpt.assignment)
        )

    def test_custom_order(self):
        p = _problem([5.0, 1.0, 5.0], gpus=2)
        res = contiguous_mapping(p, order=[2, 1, 0])
        assert len(res.assignment) == 3

    def test_rejects_non_permutation(self):
        p = _problem([1.0, 1.0], gpus=2)
        with pytest.raises(ValueError):
            contiguous_mapping(p, order=[0, 0])
