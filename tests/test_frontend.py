"""Tests for the textual stream-language front end."""

import pytest

from repro.flow import map_stream_graph
from repro.frontend.lexer import LexError, tokenize
from repro.frontend.parser import ParseError, compile_stream, parse_stream
from repro.graph.filters import FilterRole
from repro.graph.structure import FeedbackLoop, Filt, Pipeline, SplitJoin
from repro.graph.validate import validate_graph

SIMPLE = """
pipeline Main {
    filter src(push=8, role=source);
    filter work(pop=8, push=8, work=100);
    filter snk(pop=8, role=sink);
}
"""

EQUALIZER = """
// a two-band equalizer
pipeline Equalizer {
    filter src(push=4, role=source);
    splitjoin bands {
        split duplicate(4, 2);
        pipeline {
            filter low(pop=4, push=4, work=64, semantics=scale, params=(0.5));
        }
        pipeline {
            filter high(pop=4, push=4, work=64, semantics=scale, params=(2.0));
        }
        join roundrobin(4, 4);
    }
    filter mix(pop=8, push=4, work=16, semantics=add);
    filter snk(pop=4, role=sink);
}
"""

FEEDBACK = """
pipeline Main {
    filter src(push=2, role=source);
    feedbackloop iir {
        join roundrobin(1, 1);
        body filter body(pop=2, push=2, work=32);
        loop filter decay(pop=1, push=1, work=8);
        split roundrobin(1, 1);
        delay 4;
    }
    filter snk(pop=1, role=sink);
}
"""


class TestLexer:
    def test_tokenizes_simple_program(self):
        tokens = tokenize(SIMPLE)
        kinds = {t.kind for t in tokens}
        assert {"IDENT", "NUMBER", "LBRACE", "RBRACE", "SEMI", "EOF"} <= kinds

    def test_line_numbers(self):
        tokens = tokenize("a\nb\nc")
        assert [t.line for t in tokens[:3]] == [1, 2, 3]

    def test_comments_skipped(self):
        tokens = tokenize("// hello\na /* block\ncomment */ b")
        idents = [t.text for t in tokens if t.kind == "IDENT"]
        assert idents == ["a", "b"]

    def test_bad_character(self):
        with pytest.raises(LexError):
            tokenize("filter $")


class TestParser:
    def test_simple_pipeline(self):
        root = parse_stream(SIMPLE)
        assert isinstance(root, Pipeline)
        assert root.name == "Main"
        assert len(root.children) == 3
        assert all(isinstance(c, Filt) for c in root.children)

    def test_filter_attributes(self):
        root = parse_stream(SIMPLE)
        work = root.children[1].spec
        assert work.pop == 8 and work.push == 8 and work.work == 100.0
        src = root.children[0].spec
        assert src.role is FilterRole.SOURCE

    def test_splitjoin(self):
        root = parse_stream(EQUALIZER)
        sj = root.children[1]
        assert isinstance(sj, SplitJoin)
        assert sj.name == "bands"
        assert len(sj.branches) == 2
        assert sj.split.pop_per_firing == 4
        low = sj.branches[0].children[0].spec
        assert low.params == (0.5,)

    def test_feedback(self):
        root = parse_stream(FEEDBACK)
        fb = root.children[1]
        assert isinstance(fb, FeedbackLoop)
        assert fb.delay == 4

    @pytest.mark.parametrize(
        "source,message",
        [
            ("pipeline { }", "empty composition"),
            ("pipeline { filter f(pop=1, puush=1); }", "unknown filter attribute"),
            ("pipeline { filter f(pop=1, role=demon); }", "unknown role"),
            ("pipeline { widget w; }", "expected filter"),
            ("pipeline { splitjoin { split duplicate(1, 2); } }", "missing join"),
            ("pipeline { filter f(pop=1) }", "expected ';'"),
        ],
    )
    def test_errors_carry_context(self, source, message):
        with pytest.raises(ParseError, match=message):
            parse_stream(source)

    def test_error_reports_line(self):
        bad = "pipeline Main {\n  filter a(pop=1);\n  oops x;\n}"
        with pytest.raises(ParseError, match="line 3"):
            parse_stream(bad)


class TestCompile:
    def test_compiles_to_valid_graph(self):
        graph = compile_stream(EQUALIZER)
        validate_graph(graph)
        assert graph.name == "Equalizer"
        # 5 declared filters + splitter + joiner
        assert len(graph.nodes) == 7

    def test_feedback_compiles(self):
        graph = compile_stream(FEEDBACK)
        assert any(ch.delay for ch in graph.channels)
        validate_graph(graph)

    def test_compiled_graph_maps(self):
        graph = compile_stream(EQUALIZER)
        result = map_stream_graph(graph, num_gpus=2)
        assert result.report.throughput > 0

    def test_rate_mismatch_surfaces(self):
        bad = """
        pipeline Main {
            filter src(push=3, role=source);
            splitjoin {
                split roundrobin(1, 1);
                filter a(pop=1, push=2);
                filter b(pop=1, push=1);
                join roundrobin(1, 1);
            }
            filter snk(pop=2, role=sink);
        }
        """
        from repro.graph.scheduling import RateConsistencyError

        with pytest.raises(RateConsistencyError):
            compile_stream(bad)

    def test_custom_name(self):
        graph = compile_stream(SIMPLE, name="renamed")
        assert graph.name == "renamed"
