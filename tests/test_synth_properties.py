"""Property-based (seeded-loop) tests over :mod:`repro.synth` corpora.

Three properties over 200+ small generated graphs per run:

* parser <-> printer roundtrip: printing a generated structure tree and
  re-parsing it reproduces the tree exactly, and the re-flattened graph
  has the same fingerprint;
* flatten/schedule invariants: every generated flat graph is valid
  (balanced firing rates, acyclic modulo delay edges, weakly connected)
  with a bounded steady state;
* mapping validity: greedy, branch-and-bound, and MILP all produce
  valid, evaluator-consistent, mutually-consistent mappings on every
  instance (via the differential harness).

Sizes are kept small (the ``SMALL`` parameter sets below) so the whole
module stays inside the tier-1 budget; ``REPRO_SLOW=1`` unlocks a wider
sweep in ``test_synth_slow.py``.
"""

import pytest

from repro.frontend import parse_stream
from repro.graph.fingerprint import graph_fingerprint
from repro.graph.flatten import flatten
from repro.graph.scheduling import steady_state_is_consistent
from repro.graph.validate import collect_problems
from repro.synth import FAMILIES, TREE_FAMILIES, generate
from repro.synth.diffcheck import diffcheck_graph
from repro.synth.families import MAX_TOTAL_FIRINGS

#: small instances: enough structure to be adversarial, small enough
#: that 200+ of them (and their MILP solves) fit the tier-1 budget
SMALL = {
    "pipeline": {"depth": 5},
    "splitjoin": {"width": 3, "nest": 1, "chain": 1},
    "butterfly": {"stages": 2, "base": 1},
    "feedback": {"loops": 1, "chain": 1},
    "random": {"depth": 2, "max_branch": 2},
    "dag": {"layers": 3, "width": 2},
}

ROUNDTRIP_SEEDS = range(42)  # 5 tree families x 42 seeds = 210 graphs
INVARIANT_SEEDS = range(36)  # 6 families x 36 seeds = 216 graphs
SOLVER_SEEDS = range(34)  # 6 families x 34 seeds = 204 instances


@pytest.mark.parametrize("family", TREE_FAMILIES)
def test_parser_printer_roundtrip(family):
    for seed in ROUNDTRIP_SEEDS:
        instance = generate(family, seed, SMALL[family])
        reparsed = parse_stream(instance.source())
        assert reparsed == instance.tree, f"{family}/{seed}: tree drift"
        reflat = flatten(reparsed, instance.spec.instance_name)
        assert graph_fingerprint(reflat) == instance.fingerprint, (
            f"{family}/{seed}: flattened graph drift"
        )


@pytest.mark.parametrize("family", FAMILIES)
def test_flatten_schedule_invariants(family):
    for seed in INVARIANT_SEEDS:
        graph = generate(family, seed, SMALL[family]).graph
        assert collect_problems(graph) == [], f"{family}/{seed}"
        assert steady_state_is_consistent(graph)
        order = graph.topological_order()
        assert sorted(order) == list(range(len(graph.nodes)))
        assert sum(node.firing for node in graph.nodes) <= MAX_TOTAL_FIRINGS
        for ch in graph.channels:
            assert ch.src_push > 0 and ch.dst_pop > 0
            assert graph.channel_elems(ch) > 0
        # exactly the primary I/O the roles promise
        assert all(
            graph.nodes[nid].spec.role.name in ("SOURCE", "COMPUTE")
            for nid in graph.sources()
        )


@pytest.mark.parametrize("family", FAMILIES)
def test_all_solvers_valid_on_corpus(family):
    """Greedy, B&B, and MILP agree (modulo optimality proofs) on every
    small instance; any violation message names the instance."""
    failures = []
    for seed in SOLVER_SEEDS:
        instance = generate(family, seed, SMALL[family])
        report = diffcheck_graph(instance, num_gpus=2)
        if not report.ok:
            failures.append(f"{report.label}: {report.violations}")
    assert not failures, "\n".join(failures)
