"""Tests for Algorithm 1, the PDG builder, and the baseline partitioners."""

import pytest

from repro.graph.builder import linear_pipeline_graph
from repro.graph.filters import FilterSpec, sink, source
from repro.graph.flatten import flatten
from repro.graph.structure import duplicate, join_roundrobin, pipeline, splitjoin
from repro.gpu.specs import M2090
from repro.partition.baseline import previous_work_partition, single_partition
from repro.partition.heuristic import partition_stream_graph
from repro.partition.pdg import build_pdg
from repro.perf.engine import PerformanceEstimationEngine


def _f(name, pop, push, **kw):
    return FilterSpec(name=name, pop=pop, push=push, **kw)


def _wide_app(branches=4, rate=64, work=30.0, depth=3):
    """A split-join of pipelines: the shape Algorithm 1 is built for."""
    branch_nodes = [
        pipeline(*[_f(f"b{b}s{d}", rate, rate, work=work) for d in range(depth)])
        for b in range(branches)
    ]
    sj = splitjoin(
        duplicate(rate, branches), branch_nodes,
        join_roundrobin(*([rate] * branches)),
    )
    return flatten(
        pipeline(source("src", rate), sj, sink("snk", rate * branches)), "wide"
    )


def _partition_cover_ok(graph, partitions):
    seen = set()
    for members in partitions:
        assert not (seen & members), "partitions overlap"
        seen |= members
    assert seen == {n.node_id for n in graph.nodes}, "not a cover"


class TestHeuristic:
    def test_result_is_a_partition_cover(self):
        g = _wide_app()
        result = partition_stream_graph(g)
        _partition_cover_ok(g, result.partitions)

    def test_all_partitions_convex_and_fit(self):
        g = _wide_app()
        result = partition_stream_graph(g)
        for est in result.estimates:
            assert est.fits_shared_memory
        from repro.partition.convexity import ConvexityOracle

        oracle = ConvexityOracle(g)
        for members in result.partitions:
            assert oracle.is_convex(oracle.mask_of(members))

    def test_phase_counts_monotone_nonincreasing(self):
        g = _wide_app()
        result = partition_stream_graph(g)
        counts = [
            result.phase_counts[k]
            for k in ("phase2", "phase3", "phase4")
            if k in result.phase_counts
        ]
        assert counts == sorted(counts, reverse=True)

    def test_pipeline_graph_merges_into_few_partitions(self):
        # an IO-dominated chain merges aggressively (shared buffers)
        g = linear_pipeline_graph("chain", stages=6, rate=128, work=1.0)
        result = partition_stream_graph(g)
        assert len(result) <= 2

    def test_compute_bound_chain_keeps_more_partitions(self):
        light = partition_stream_graph(
            linear_pipeline_graph("l", stages=6, rate=128, work=1.0)
        )
        heavy = partition_stream_graph(
            linear_pipeline_graph("h", stages=6, rate=8, work=50_000.0)
        )
        assert len(heavy) >= len(light)

    def test_deterministic(self):
        g = _wide_app()
        a = partition_stream_graph(g)
        b = partition_stream_graph(g)
        assert a.partitions == b.partitions

    def test_phase_ablation_reduces_merging(self):
        g = _wide_app()
        full = partition_stream_graph(g, phases=(1, 2, 3, 4))
        no_merge_phases = partition_stream_graph(g, phases=(1, 2))
        assert len(no_merge_phases) >= len(full)

    def test_singletons_when_only_phase3(self):
        g = linear_pipeline_graph("s", stages=3, rate=16, work=10.0)
        result = partition_stream_graph(g, phases=(3,))
        _partition_cover_ok(g, result.partitions)

    def test_total_t_not_worse_than_singletons(self):
        g = _wide_app()
        engine = PerformanceEstimationEngine(g)
        result = partition_stream_graph(g, engine=engine)
        singleton_total = sum(
            engine.t([n.node_id]) for n in g.nodes
        )
        assert result.total_t <= singleton_total + 1e-6

    def test_assignment_property(self):
        g = _wide_app()
        result = partition_stream_graph(g)
        assignment = result.assignment
        for pid, members in enumerate(result.partitions):
            for nid in members:
                assert assignment[nid] == pid


class TestPdg:
    def test_pdg_matches_partition_count(self):
        g = _wide_app()
        engine = PerformanceEstimationEngine(g)
        result = partition_stream_graph(g, engine=engine)
        pdg = build_pdg(g, result.partitions, engine)
        assert len(pdg) == len(result)

    def test_edge_weights_sum_crossing_channels(self):
        g = linear_pipeline_graph("e", stages=4, rate=32, work=40_000.0)
        engine = PerformanceEstimationEngine(g)
        result = partition_stream_graph(g, engine=engine)
        if len(result) < 2:
            pytest.skip("graph merged to one partition")
        pdg = build_pdg(g, result.partitions, engine)
        assignment = result.assignment
        for (src, dst), weight in pdg.edges.items():
            expected = sum(
                g.channel_bytes(ch)
                for ch in g.channels
                if assignment[ch.src] == src and assignment[ch.dst] == dst
            )
            assert weight == expected

    def test_quotient_is_dag(self):
        g = _wide_app()
        engine = PerformanceEstimationEngine(g)
        result = partition_stream_graph(g, engine=engine)
        pdg = build_pdg(g, result.partitions, engine)
        order = pdg.topological_order()
        assert sorted(order) == list(range(len(pdg)))

    def test_fragment_scaling(self):
        g = _wide_app()
        engine = PerformanceEstimationEngine(g)
        result = partition_stream_graph(g, engine=engine)
        pdg_small = build_pdg(g, result.partitions, engine, executions_per_fragment=64)
        pdg_big = build_pdg(g, result.partitions, engine, executions_per_fragment=256)
        if pdg_small.edges:
            edge = next(iter(pdg_small.edges))
            assert pdg_big.edge_fragment_bytes(edge) == 4 * pdg_small.edge_fragment_bytes(edge)
        assert pdg_big.nodes[0].t_fragment >= pdg_small.nodes[0].t_fragment

    def test_host_io_recorded(self):
        g = _wide_app()
        engine = PerformanceEstimationEngine(g)
        result = partition_stream_graph(g, engine=engine)
        pdg = build_pdg(g, result.partitions, engine)
        total_in = sum(io[0] for io in pdg.host_io)
        inp, out = g.io_elems()
        assert total_in == inp * g.elem_bytes


class TestBaselines:
    def test_previous_work_is_a_cover(self):
        g = _wide_app()
        parts = previous_work_partition(g)
        _partition_cover_ok(g, parts)

    def test_previous_work_partitions_fit_sm(self):
        from repro.gpu.memory import partition_memory

        g = _wide_app()
        for members in previous_work_partition(g):
            assert partition_memory(g, members).smem_for(1) <= M2090.shared_mem_bytes

    def test_previous_work_merges_more_than_ours_on_compute_bound(self):
        """The kernel-count-ratio effect: on compute-bound apps, [7]
        produces fewer partitions because it ignores compute time."""
        g = _wide_app(branches=4, rate=16, work=8000.0, depth=4)
        ours = partition_stream_graph(g)
        prev = previous_work_partition(g)
        assert len(prev) <= len(ours)

    def test_single_partition(self):
        g = _wide_app()
        parts = single_partition(g)
        assert len(parts) == 1
        _partition_cover_ok(g, parts)
