"""Tests for splitter/joiner elimination (Chapter V)."""

import pytest

from repro.apps.registry import build_app
from repro.graph.filters import FilterRole, FilterSpec, sink, source
from repro.graph.flatten import flatten
from repro.graph.structure import (
    duplicate,
    join_roundrobin,
    pipeline,
    roundrobin,
    splitjoin,
)
from repro.graph.validate import validate_graph
from repro.gpu.functional import FunctionalVM
from repro.gpu.memory import partition_memory
from repro.opt.splitjoin_elim import eliminate_movers
from repro.perf.engine import PerformanceEstimationEngine


def _f(name, pop, push, **kw):
    return FilterSpec(name=name, pop=pop, push=push, **kw)


def _dup_graph():
    sj = splitjoin(
        duplicate(4, 2),
        [_f("a", 4, 4, semantics="identity"),
         _f("b", 4, 4, semantics="scale", params=(2.0,))],
        join_roundrobin(4, 4),
    )
    return flatten(pipeline(source("s", 4), sj, sink("t", 8)), "dupapp")


def _rr_graph():
    sj = splitjoin(
        roundrobin(2, 2),
        [_f("lo", 2, 2, semantics="identity"),
         _f("hi", 2, 2, semantics="scale", params=(10.0,))],
        join_roundrobin(2, 2),
    )
    return flatten(pipeline(source("s", 4), sj, sink("t", 4)), "rrapp")


class TestEliminationStructure:
    def test_removes_movers(self):
        g = _dup_graph()
        out, report = eliminate_movers(g)
        assert report.splitters_removed == 1
        assert report.joiners_removed == 1
        roles = [n.spec.role for n in out.nodes]
        assert FilterRole.SPLITTER not in roles
        assert FilterRole.JOINER not in roles

    def test_result_is_valid_graph(self):
        for g in (_dup_graph(), _rr_graph()):
            out, _ = eliminate_movers(g)
            validate_graph(out)

    def test_selective_elimination(self):
        g = _dup_graph()
        only_split, rep = eliminate_movers(g, eliminate_joiners=False)
        assert rep.splitters_removed == 1 and rep.joiners_removed == 0
        roles = [n.spec.role for n in only_split.nodes]
        assert FilterRole.JOINER in roles

    def test_alias_groups_assigned(self):
        g = _dup_graph()
        out, _ = eliminate_movers(g, eliminate_joiners=False)
        aliased = [ch for ch in out.channels if ch.alias_group is not None]
        assert len(aliased) == 2  # both branches read the producer block

    def test_rr_slices_assigned(self):
        g = _rr_graph()
        out, _ = eliminate_movers(g, eliminate_joiners=False)
        sliced = [ch for ch in out.channels if ch.slice_period]
        assert len(sliced) == 2
        offsets = sorted(ch.slice_offset for ch in sliced)
        assert offsets == [0, 2]

    def test_interleave_pattern_recorded(self):
        g = _rr_graph()
        out, _ = eliminate_movers(g, eliminate_splitters=False)
        sinks = [n for n in out.nodes if n.spec.role is FilterRole.SINK]
        assert sinks[0].meta and "interleave" in sinks[0].meta


class TestSemanticEquivalence:
    """The transform must not change the program's output stream."""

    @pytest.mark.parametrize("builder", [_dup_graph, _rr_graph])
    def test_small_graphs(self, builder):
        g = builder()
        out, report = eliminate_movers(g)
        assert report.total_removed > 0
        base = FunctionalVM(g, source_fn=lambda n, i: float(i)).run(4)
        enhanced = FunctionalVM(out, source_fn=lambda n, i: float(i)).run(4)
        assert base == enhanced

    @pytest.mark.parametrize("app,n", [("FFT", 16), ("Bitonic", 8)])
    def test_benchmark_apps(self, app, n):
        g = build_app(app, n)
        out, report = eliminate_movers(g)
        assert report.total_removed > 0
        base = FunctionalVM(g).run(2)
        enhanced = FunctionalVM(out).run(2)
        for key in base:
            assert base[key] == pytest.approx(enhanced[key])


class TestPerformanceEffect:
    def test_memory_footprint_drops(self):
        g = build_app("Bitonic", 16)
        out, _ = eliminate_movers(g)
        before = partition_memory(g).working_set
        after = partition_memory(out).working_set
        assert after < before

    def test_estimated_time_improves(self):
        """The Table 5.1 effect: the enhanced version's whole-graph
        estimate beats the original's."""
        g = build_app("Bitonic", 16)
        out, _ = eliminate_movers(g)
        t_base = PerformanceEstimationEngine(g).t(
            [n.node_id for n in g.nodes]
        )
        t_enh = PerformanceEstimationEngine(out).t(
            [n.node_id for n in out.nodes]
        )
        assert t_enh < t_base

    def test_fft_single_mover_pair(self):
        g = build_app("FFT", 64)
        out, report = eliminate_movers(g)
        assert report.splitters_removed == 1
        assert report.joiners_removed == 1
