"""Integration tests: every benchmark app through every subsystem."""

import pytest

from repro.apps.registry import APPS, build_app
from repro.flow import map_stream_graph
from repro.gpu.functional import FunctionalVM
from repro.graph.schedule import schedule_string
from repro.graph.validate import validate_graph
from repro.partition.convexity import ConvexityOracle
from repro.perf.engine import PerformanceEstimationEngine

SMALL_N = {
    "DES": 2,
    "FMRadio": 3,
    "FFT": 8,
    "DCT": 3,
    "MatMul2": 2,
    "MatMul3": 2,
    "BitonicRec": 8,
    "Bitonic": 8,
}


@pytest.mark.parametrize("name", sorted(APPS))
class TestEveryApp:
    def test_functional_vm_executes(self, name):
        """Every app's semantics are executable; output volume matches the
        steady-state rates."""
        graph = build_app(name, SMALL_N[name])
        vm = FunctionalVM(graph)
        outputs = vm.run(2)
        produced = sum(len(v) for v in outputs.values())
        sinks = [n for n in graph.nodes if not graph.successors(n.node_id)]
        expected = 2 * sum(n.firing * n.spec.pop for n in sinks)
        assert produced == expected

    def test_flow_end_to_end_two_gpus(self, name):
        graph = build_app(name, SMALL_N[name])
        result = map_stream_graph(graph, num_gpus=2)
        validate_graph(graph)
        assert result.report.throughput > 0
        assert len(result.mapping.assignment) == result.num_partitions
        assert max(result.mapping.assignment) <= 1

    def test_partitions_are_convex_covers(self, name):
        graph = build_app(name, SMALL_N[name])
        result = map_stream_graph(graph, num_gpus=1)
        oracle = ConvexityOracle(graph)
        seen = set()
        for members in result.partitions:
            assert oracle.is_convex(oracle.mask_of(members))
            assert not (seen & members)
            seen |= members
        assert seen == {n.node_id for n in graph.nodes}

    def test_schedules_cover_all_filters(self, name):
        graph = build_app(name, SMALL_N[name])
        text = schedule_string(graph)
        for node in graph.nodes:
            assert node.spec.name in text

    def test_estimates_finite_and_positive(self, name):
        graph = build_app(name, SMALL_N[name])
        engine = PerformanceEstimationEngine(graph)
        est = engine.estimate([n.node_id for n in graph.nodes])
        assert 0 < est.t < float("inf")
        assert est.config.total_threads <= 1024


class TestDataConservation:
    """Volume invariants: what enters the graph leaves it (scaled by the
    steady-state rates)."""

    @pytest.mark.parametrize("name", ["FFT", "Bitonic", "DES"])
    def test_per_iteration_volumes(self, name):
        graph = build_app(name, SMALL_N[name])
        inp, out = graph.io_elems()
        vm = FunctionalVM(graph)
        outputs = vm.run(3)
        assert sum(len(v) for v in outputs.values()) == 3 * out

    def test_mapping_does_not_change_graph(self):
        graph = build_app("FFT", 8)
        before = [(n.spec.name, n.firing) for n in graph.nodes]
        map_stream_graph(graph, num_gpus=2)
        after = [(n.spec.name, n.firing) for n in graph.nodes]
        assert before == after
