"""Tests for flattening and steady-state scheduling."""

import pytest

from repro.graph.builder import GraphBuilder, linear_pipeline_graph
from repro.graph.filters import FilterRole, FilterSpec, sink, source
from repro.graph.flatten import flatten
from repro.graph.scheduling import (
    RateConsistencyError,
    solve_repetition_vector,
    steady_state_is_consistent,
)
from repro.graph.structure import (
    FeedbackLoop,
    Filt,
    duplicate,
    join_roundrobin,
    pipeline,
    roundrobin,
    splitjoin,
)
from repro.graph.validate import GraphValidationError, validate_graph


def _f(name, pop, push, **kw):
    return FilterSpec(name=name, pop=pop, push=push, **kw)


class TestFlattenPipeline:
    def test_simple_chain(self):
        g = flatten(pipeline(source("s", 4), _f("a", 4, 4), sink("t", 4)), "chain")
        assert len(g.nodes) == 3
        assert len(g.channels) == 2
        assert [n.firing for n in g.nodes] == [1, 1, 1]

    def test_rate_mismatch_resolved_by_firings(self):
        # a produces 2/firing, b consumes 3/firing -> firings 3 and 2
        g = flatten(pipeline(source("s", 2), _f("b", 3, 1), sink("t", 1)), "ratio")
        s, b, t = g.nodes
        assert (s.firing, b.firing, t.firing) == (3, 2, 2)
        assert steady_state_is_consistent(g)

    def test_innermost_pipeline_segments_recorded(self):
        root = pipeline(source("s", 1), _f("a", 1, 1), _f("b", 1, 1), sink("t", 1))
        g = flatten(root, "p")
        assert len(g.pipelines) == 1
        seg = g.pipelines[0]
        assert [g.nodes[n].name for n in seg] == ["s", "a", "b", "t"]

    def test_segments_split_around_composites(self):
        sj = splitjoin(duplicate(1, 2), [_f("x", 1, 1), _f("y", 1, 1)],
                       join_roundrobin(1, 1))
        root = pipeline(source("s", 1), _f("a", 1, 1), sj, _f("b", 2, 2), sink("t", 2))
        g = flatten(root, "p2")
        names = [[g.nodes[n].name for n in seg] for seg in g.pipelines]
        assert ["s", "a"] in names
        assert ["b", "t"] in names


class TestFlattenSplitJoin:
    def test_duplicate_splitjoin(self):
        sj = splitjoin(
            duplicate(2, 2), [_f("a", 2, 2), _f("b", 2, 2)], join_roundrobin(2, 2)
        )
        g = flatten(pipeline(source("s", 2), sj, sink("t", 4)), "dup")
        roles = [n.spec.role for n in g.nodes]
        assert roles.count(FilterRole.SPLITTER) == 1
        assert roles.count(FilterRole.JOINER) == 1
        assert steady_state_is_consistent(g)
        validate_graph(g)

    def test_roundrobin_weights_drive_firings(self):
        sj = splitjoin(
            roundrobin(1, 3), [_f("a", 1, 1), _f("b", 1, 1)], join_roundrobin(1, 3)
        )
        g = flatten(pipeline(source("s", 4), sj, sink("t", 4)), "rr")
        a = g.node_by_name("a")
        b = g.node_by_name("b")
        assert b.firing == 3 * a.firing

    def test_mismatched_join_weights_raise(self):
        sj = splitjoin(
            roundrobin(1, 1), [_f("a", 1, 2), _f("b", 1, 1)], join_roundrobin(1, 1)
        )
        with pytest.raises(RateConsistencyError):
            flatten(pipeline(source("s", 2), sj, sink("t", 2)), "bad")

    def test_splitter_work_scales_with_data(self):
        sj = splitjoin(
            duplicate(8, 2), [_f("a", 8, 8), _f("b", 8, 8)], join_roundrobin(8, 8)
        )
        g = flatten(pipeline(source("s", 8), sj, sink("t", 16)), "w")
        splitter = next(n for n in g.nodes if n.spec.role is FilterRole.SPLITTER)
        assert splitter.spec.work > 0


class TestFlattenFeedback:
    def _loop(self, delay=4):
        return FeedbackLoop(
            body=Filt(_f("body", 2, 2)),
            loopback=Filt(_f("lb", 1, 1)),
            join=join_roundrobin(1, 1),
            split=roundrobin(1, 1),
            delay=delay,
        )

    def test_flattens_with_delay_edge(self):
        g = flatten(pipeline(source("s", 1), self._loop(), sink("t", 1)), "fb")
        delays = [ch for ch in g.channels if ch.delay]
        assert len(delays) == 1
        assert g.is_dag()  # delay edge broken for ordering
        assert steady_state_is_consistent(g)

    def test_zero_delay_cycle_rejected_by_validation(self):
        g = flatten(pipeline(source("s", 1), self._loop(delay=0), sink("t", 1)), "fb0")
        with pytest.raises(GraphValidationError):
            validate_graph(g)


class TestRepetitionVector:
    def test_multirate_chain(self):
        b = GraphBuilder("mr")
        a = b.filter("a", pop=0, push=3, role=FilterRole.SOURCE)
        c = b.filter("c", pop=2, push=5)
        d = b.filter("d", pop=3, push=0, role=FilterRole.SINK)
        b.connect(a, c)
        b.connect(c, d)
        g = b.build()
        # a: push 3, c: pop 2 -> lcm: a fires 2, c fires 3, c push 5*3=15, d pop 3 -> d fires 5
        assert [n.firing for n in g.nodes] == [2, 3, 5]

    def test_inconsistent_diamond_raises(self):
        b = GraphBuilder("bad")
        s = b.filter("s", pop=0, push=2, role=FilterRole.SOURCE)
        x = b.filter("x", pop=1, push=1)
        y = b.filter("y", pop=1, push=2)
        t = b.filter("t", pop=2, push=0, role=FilterRole.SINK)
        b.connect(s, x, src_push=1)
        b.connect(s, y, src_push=1)
        b.connect(x, t, dst_pop=1)
        b.connect(y, t, dst_pop=1)
        with pytest.raises(RateConsistencyError):
            b.build()

    def test_result_is_minimal(self):
        g = linear_pipeline_graph("lin", stages=3, rate=16)
        assert all(n.firing == 1 for n in g.nodes)

    def test_empty_graph(self):
        g = GraphBuilder("empty").graph
        assert solve_repetition_vector(g) == []


class TestSteadyStateQuantities:
    def test_channel_elems_and_bytes(self):
        g = linear_pipeline_graph("lin", stages=2, rate=8)
        ch = g.channels[0]
        assert g.channel_elems(ch) == 8
        assert g.channel_bytes(ch) == 32

    def test_io_elems_whole_graph(self):
        g = linear_pipeline_graph("lin", stages=2, rate=8)
        inp, out = g.io_elems()
        assert inp == 8 and out == 8

    def test_io_elems_subset_counts_crossing_channels(self):
        g = linear_pipeline_graph("lin", stages=3, rate=4)
        stage1 = g.node_by_name("stage1").node_id
        inp, out = g.io_elems([stage1])
        assert inp == 4 and out == 4

    def test_total_work(self):
        g = linear_pipeline_graph("lin", stages=2, rate=4, work=10.0)
        assert g.total_work() == pytest.approx(2 * 10.0 + 1.0 + 1.0)


class TestGraphQueries:
    def test_topological_order_is_valid(self):
        g = linear_pipeline_graph("lin", stages=4)
        order = g.topological_order()
        pos = {nid: i for i, nid in enumerate(order)}
        for ch in g.channels:
            assert pos[ch.src] < pos[ch.dst]

    def test_reachability(self):
        g = linear_pipeline_graph("lin", stages=3)
        src = g.sources()[0]
        snk = g.sinks()[0]
        assert snk in g.reachable_from([src])
        assert src in g.reaching([snk])

    def test_neighbors_unique(self):
        b = GraphBuilder("multi")
        a = b.filter("a", pop=0, push=2, role=FilterRole.SOURCE)
        c = b.filter("c", pop=2, push=0, role=FilterRole.SINK)
        b.connect(a, c, src_push=1, dst_pop=1)
        b.connect(a, c, src_push=1, dst_pop=1)
        g = b.build()
        assert g.neighbors(a) == [c]


def test_validate_accepts_linear_graph():
    validate_graph(linear_pipeline_graph("ok", stages=2))


def test_validate_rejects_disconnected():
    b = GraphBuilder("disc")
    b.filter("a", pop=0, push=1, role=FilterRole.SOURCE)
    b.filter("b", pop=0, push=1, role=FilterRole.SOURCE)
    with pytest.raises(GraphValidationError):
        validate_graph(b.build())
