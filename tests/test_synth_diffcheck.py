"""Differential-regression tests on the pinned 30-graph corpus, plus
explicit coverage of the MILP timeout-status path and of the harness's
ability to catch lying solvers."""

import pytest

from repro.flow import pdg_stage, partition_stage, profile_stage
from repro.mapping.greedy import lpt_mapping
from repro.mapping.problem import MappingProblem, build_mapping_problem
from repro.mapping.result import MappingResult, make_result
from repro.mapping import milp_model, solver_milp
from repro.gpu.topology import default_topology
from repro.synth import PINNED_CORPUS, diffcheck_corpus, generate
from repro.synth import diffcheck as diffcheck_mod
from repro.synth.diffcheck import (
    InstanceReport,
    _check_outcome,
    diffcheck_problem,
)


@pytest.fixture(scope="module")
def corpus_report():
    """One shared run of the full pinned corpus (MILP gap 0, so the
    greedy-vs-optimal comparison below is exact)."""
    return diffcheck_corpus(PINNED_CORPUS, num_gpus=2)


class TestPinnedCorpus:
    def test_covers_thirty_instances(self, corpus_report):
        assert len(corpus_report.instances) == 30

    def test_zero_violations(self, corpus_report):
        assert corpus_report.ok, "\n".join(corpus_report.violations)

    def test_greedy_never_beats_optimal_milp(self, corpus_report):
        """The satellite invariant, asserted directly: on every instance
        where MILP *proved* optimality, the greedy objective is >= the
        MILP objective.  Instances where MILP hit its limit are skipped
        (recorded as skips by the harness), never failed."""
        compared = 0
        for inst in corpus_report.instances:
            milp = inst.outcomes.get("milp")
            greedy = inst.outcomes.get("greedy-lpt")
            if milp is None or greedy is None or not milp.optimal:
                continue  # timeout / no-solution path: skip, don't fail
            compared += 1
            assert greedy.tmax >= milp.tmax * (1 - 1e-6), inst.label
        # the corpus is sized so that on an unloaded box every MILP
        # solve finishes; under contention some may time out, but never
        # all of them
        assert compared > 0

    def test_render_mentions_every_instance(self, corpus_report):
        text = corpus_report.render()
        assert "synth-dag-s1" in text
        assert "30 instances" in text


def _toy_problem(times=(400e3, 300e3, 200e3, 100e3), gpus=2):
    """Compute-dominated 4-partition chain: spreading across GPUs always
    beats stacking (link latency is 10 us, compute totals 1 ms)."""
    return MappingProblem(
        times=list(times),
        edges={(0, 1): 128.0, (1, 2): 128.0, (2, 3): 128.0},
        host_io=[(128.0, 0.0)] + [(0.0, 0.0)] * (len(times) - 2)
        + [(0.0, 128.0)],
        topology=default_topology(gpus),
    )


class TestMilpTimeoutPath:
    """The timeout-status path of :func:`solve_milp`, exercised
    deterministically by forcing HiGHS's reported status."""

    def test_time_limit_status_clears_optimal_flag(self, monkeypatch):
        real_solve = milp_model.CompiledMilpModel.solve

        def solve_hitting_limit(self, *args, **kwargs):
            res = dict(real_solve(self, *args, **kwargs))
            res["status"] = 1  # scipy/HiGHS: iteration or time limit
            return res

        monkeypatch.setattr(
            milp_model.CompiledMilpModel, "solve", solve_hitting_limit
        )
        result = solver_milp.solve_milp(_toy_problem())
        assert result.optimal is False
        assert dict(result.solve_stats)["milp_status"] == 1.0
        # the incumbent is still a usable, valid assignment
        assert len(result.assignment) == 4

    def test_no_solution_raises_runtime_error(self, monkeypatch):
        def solve_no_solution(self, *args, **kwargs):
            return {
                "status": 1, "x": None, "fun": None,
                "mip_node_count": None, "mip_gap": None,
                "message": "time limit reached with no incumbent",
                "warm_started": False,
            }

        monkeypatch.setattr(
            milp_model.CompiledMilpModel, "solve", solve_no_solution
        )
        with pytest.raises(RuntimeError, match="time limit"):
            solver_milp.solve_milp(_toy_problem())

    def test_diffcheck_skips_timed_out_milp(self, monkeypatch):
        """A non-optimal MILP answer — even a bad one — is a skip, not a
        violation: timeouts must not fail the corpus."""
        problem = _toy_problem()

        def milp_timeout_stub(prob, **kwargs):
            # worst-possible but valid incumbent, flagged non-optimal
            return make_result(
                prob, [0] * prob.num_partitions, "milp", optimal=False,
                stats=(("milp_status", 1.0),),
            )

        monkeypatch.setattr(diffcheck_mod, "solve_milp", milp_timeout_stub)
        report = diffcheck_problem(problem, "stub", problem.num_partitions)
        assert report.ok
        assert any("milp" in skip for skip in report.skips)

    def test_diffcheck_skips_milp_runtime_error(self, monkeypatch):
        def milp_no_solution(prob, **kwargs):
            raise RuntimeError("MILP solver failed: no incumbent")

        monkeypatch.setattr(diffcheck_mod, "solve_milp", milp_no_solution)
        report = diffcheck_problem(
            _toy_problem(), "stub", 4
        )
        assert report.ok
        assert any("no solution" in skip for skip in report.skips)


class TestHarnessCatchesBadSolvers:
    """The differential harness itself must detect solver lies."""

    def test_false_optimality_claim_is_a_violation(self, monkeypatch):
        problem = _toy_problem()

        def lying_milp(prob, **kwargs):
            # claims optimality for the all-on-one-GPU assignment, which
            # LPT trivially beats on this compute-heavy instance
            return make_result(
                prob, [0] * prob.num_partitions, "milp", optimal=True,
                stats=(("milp_status", 0.0),),
            )

        assert lpt_mapping(problem).tmax < problem.tmax([0, 0, 0, 0])
        monkeypatch.setattr(diffcheck_mod, "solve_milp", lying_milp)
        report = diffcheck_problem(problem, "liar", problem.num_partitions)
        assert not report.ok
        assert any("heuristic beats it" in v for v in report.violations)

    def test_miscored_result_is_a_violation(self):
        problem = _toy_problem()
        honest = lpt_mapping(problem)
        lying = MappingResult(
            assignment=honest.assignment,
            tmax=honest.tmax * 0.5,  # reported better than it scores
            gpu_times=honest.gpu_times,
            link_times=honest.link_times,
            solver="greedy-lpt",
            optimal=False,
        )
        report = InstanceReport(label="x", num_partitions=4, num_gpus=2)
        _check_outcome(report, problem, lying)
        assert any("evaluator" in v for v in report.violations)

    def test_out_of_range_assignment_is_a_violation(self):
        problem = _toy_problem()
        bogus = MappingResult(
            assignment=(0, 1, 2, 0),  # GPU 2 does not exist
            tmax=1.0,
            gpu_times=(1.0, 1.0),
            link_times=(),
            solver="milp",
            optimal=True,
        )
        report = InstanceReport(label="x", num_partitions=4, num_gpus=2)
        _check_outcome(report, problem, bogus)
        assert any("out of range" in v for v in report.violations)

    def test_wrong_length_assignment_is_a_violation(self):
        problem = _toy_problem()
        short = MappingResult(
            assignment=(0, 1),
            tmax=1.0,
            gpu_times=(1.0, 1.0),
            link_times=(),
            solver="milp",
            optimal=True,
        )
        report = InstanceReport(label="x", num_partitions=4, num_gpus=2)
        _check_outcome(report, problem, short)
        assert any("length" in v for v in report.violations)


class TestInvalidGraphPath:
    def test_unsolved_rates_reported_not_crashed(self):
        from repro.graph.stream_graph import StreamGraph
        from repro.graph.filters import FilterSpec
        from repro.synth.families import SynthGraph, SynthSpec
        from repro.synth.diffcheck import diffcheck_graph

        graph = StreamGraph("broken")
        graph.add_node(FilterSpec(name="only", pop=1, push=1))
        instance = SynthGraph(
            spec=SynthSpec.make("pipeline", 0), tree=None, graph=graph
        )
        report = diffcheck_graph(instance)
        assert not report.ok
        assert any("graph invalid" in v for v in report.violations)


class TestMultiGpuCorpusSample:
    def test_four_gpu_sample_clean(self):
        """A few corpus instances at g=4 exercise the tree topology's
        multi-link routing in all solvers."""
        for family, seed in (("splitjoin", 3), ("dag", 3), ("butterfly", 2)):
            instance = generate(family, seed)
            engine = profile_stage(instance.graph)
            partitions, partitioning = partition_stage(instance.graph, engine)
            pdg = pdg_stage(
                instance.graph, partitions, engine, partitioning=partitioning
            )
            problem = build_mapping_problem(pdg, 4)
            report = diffcheck_problem(
                problem, f"{family}/{seed}", len(partitions)
            )
            assert report.ok, report.violations
