"""The incremental repair solver: exactness, determinism, guardrails.

Pins the repair guarantees the scenario harness and the service rely
on: repaired mappings are rescored bit-exactly through the shared
evaluator, repair is deterministic back to back, dead-GPU actors are
evicted (and only placed on live GPUs), the answer never loses to
greedy-from-scratch, ``alpha`` actually prices migration, and a
destructive delta falls back to the portfolio.
"""

import pytest

from repro.apps import build_app
from repro.flow import partition_stage, pdg_stage, profile_stage
from repro.gpu import (
    PLATFORM_NAMES,
    PlatformDelta,
    apply_deltas,
    build_platform,
)
from repro.mapping import (
    REPAIR_ALPHA,
    build_mapping_problem,
    migration_cost_bytes,
    solve_repair,
    translate_assignment,
)
from repro.service.portfolio import solve_portfolio


def _pdg(app="Bitonic", n=8):
    graph = build_app(app, n)
    engine = profile_stage(graph)
    partitions, partitioning = partition_stage(graph, engine)
    return pdg_stage(graph, partitions, engine, partitioning=partitioning)


def _degraded(pdg, platform, deltas, budget="instant"):
    base = build_platform(platform)
    base_problem = build_mapping_problem(pdg, base.num_gpus, topology=base)
    baseline = solve_portfolio(
        base_problem, budget=budget, topo_order=pdg.topological_order()
    ).mapping
    hit = apply_deltas(base, deltas)
    problem = build_mapping_problem(
        pdg, hit.topology.num_gpus, topology=hit.topology
    )
    return problem, baseline.assignment, hit.gpu_map


class TestTranslateAssignment:
    def test_identity_without_a_map(self):
        assert translate_assignment((0, 1, 2), None) == [0, 1, 2]

    def test_dead_gpus_become_none(self):
        assert translate_assignment(
            (0, 1, 2, 1), (0, None, 1, 2)
        ) == [0, None, 1, None]


class TestRepairGuarantees:
    def test_rescore_is_bit_exact_and_deterministic(self):
        pdg = _pdg()
        problem, old, gpu_map = _degraded(
            pdg, "host-star", [PlatformDelta.kill_gpu(1)]
        )
        first = solve_repair(
            problem, old, gpu_map=gpu_map,
            topo_order=pdg.topological_order(),
        )
        # exact equality, not approx: the repair result must be rescored
        # through the same evaluator as every other solver
        assert first.mapping.tmax == problem.tmax(first.mapping.assignment)
        again = solve_repair(
            problem, old, gpu_map=gpu_map,
            topo_order=pdg.topological_order(),
        )
        assert again.mapping.assignment == first.mapping.assignment
        assert again.mapping.tmax == first.mapping.tmax
        assert again.migration_bytes == first.migration_bytes

    def test_evicts_exactly_the_dead_gpus_actors(self):
        pdg = _pdg()
        problem, old, gpu_map = _degraded(
            pdg, "host-star", [PlatformDelta.kill_gpu(1)]
        )
        repair = solve_repair(
            problem, old, gpu_map=gpu_map,
            topo_order=pdg.topological_order(),
        )
        expected = tuple(
            pid for pid, gpu in enumerate(old) if gpu_map[gpu] is None
        )
        assert repair.evicted == expected
        assert all(
            0 <= g < problem.num_gpus for g in repair.mapping.assignment
        )

    def test_never_worse_than_greedy_across_platforms(self):
        pdg = _pdg()
        for platform in PLATFORM_NAMES:
            base = build_platform(platform)
            for gpu in range(base.num_gpus):
                problem, old, gpu_map = _degraded(
                    pdg, platform, [PlatformDelta.kill_gpu(gpu)]
                )
                repair = solve_repair(
                    problem, old, gpu_map=gpu_map,
                    topo_order=pdg.topological_order(),
                )
                assert repair.mapping.tmax <= repair.greedy_tmax * (
                    1 + 1e-9
                ), (platform, gpu)

    def test_throttle_repair_keeps_every_actor_placed(self):
        pdg = _pdg("DES", 8)
        problem, old, gpu_map = _degraded(
            pdg, "two-island", [PlatformDelta.throttle_link("sw1", 0.25)]
        )
        repair = solve_repair(
            problem, old, gpu_map=gpu_map,
            topo_order=pdg.topological_order(),
        )
        assert repair.evicted == ()
        assert len(repair.mapping.assignment) == problem.num_partitions


class TestAlphaSemantics:
    def test_higher_alpha_never_moves_more_bytes(self):
        pdg = _pdg("DES", 8)
        problem, old, gpu_map = _degraded(
            pdg, "two-island", [PlatformDelta.kill_gpu(2)], budget="small"
        )
        free = solve_repair(
            problem, old, gpu_map=gpu_map, alpha=0.0,
            budget="small", topo_order=pdg.topological_order(),
        )
        sticky = solve_repair(
            problem, old, gpu_map=gpu_map, alpha=1e3,
            budget="small", topo_order=pdg.topological_order(),
        )
        assert sticky.migration_bytes <= free.migration_bytes
        assert free.alpha == 0.0 and sticky.alpha == 1e3

    def test_negative_alpha_rejected(self):
        pdg = _pdg()
        problem, old, gpu_map = _degraded(
            pdg, "host-star", [PlatformDelta.kill_gpu(1)]
        )
        with pytest.raises(ValueError):
            solve_repair(problem, old, gpu_map=gpu_map, alpha=-1.0)


class TestFallback:
    def test_destructive_delta_falls_back_to_portfolio(self):
        pdg = _pdg()
        deltas = [PlatformDelta.kill_gpu(g) for g in (0, 1, 2)]
        problem, old, gpu_map = _degraded(pdg, "host-star", deltas)
        repair = solve_repair(
            problem, old, gpu_map=gpu_map,
            topo_order=pdg.topological_order(),
        )
        assert repair.fallback
        # the fallback answer still honours every repair guarantee
        assert repair.mapping.tmax == problem.tmax(repair.mapping.assignment)
        assert repair.mapping.tmax <= repair.greedy_tmax * (1 + 1e-9)


class TestMigrationCost:
    def test_cost_counts_host_io_and_cut_edges(self):
        pdg = _pdg()
        base = build_platform("host-star")
        problem = build_mapping_problem(pdg, base.num_gpus, topology=base)
        for pid in range(problem.num_partitions):
            assert migration_cost_bytes(problem, pid) >= 0.0
        # a stream graph moves data: at least one partition costs > 0
        assert any(
            migration_cost_bytes(problem, pid) > 0
            for pid in range(problem.num_partitions)
        )

    def test_alpha_default_matches_module_constant(self):
        pdg = _pdg()
        problem, old, gpu_map = _degraded(
            pdg, "host-star", [PlatformDelta.kill_gpu(1)]
        )
        repair = solve_repair(
            problem, old, gpu_map=gpu_map,
            topo_order=pdg.topological_order(),
        )
        assert repair.alpha == REPAIR_ALPHA
