"""The HTTP serving tier: wire contract, admission control, observability.

The headline pin is byte-identity — for an equal, deadline-free request
the ``POST /api/v1/solve`` body must equal the stdio ``serve_stream``
response line *exactly* (dedup/key/state fields included), and the batch
endpoint must reproduce the whole JSONL stream.  Around it: 429 load
shedding (token buckets and the queue-depth bound), the Prometheus
``/metrics`` exposition, ``/healthz`` flipping to 503 during drain, and
the job-poll endpoint.
"""

import io
import json
import threading
import time
import urllib.error
import urllib.request
from contextlib import contextmanager

import pytest

from repro.service import (
    AdmissionController,
    MappingRequest,
    MappingService,
    serve_http,
    serve_stream,
)
from repro.service.admission import TIER_COST, _FakeClock


def _request(url, data=None, headers=None, timeout=60):
    """(status, body, headers) for GET (data=None) or POST."""
    req = urllib.request.Request(
        url, data=data, headers=headers or {},
        method="GET" if data is None else "POST",
    )
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, resp.read(), resp.headers
    except urllib.error.HTTPError as exc:
        body = exc.read()
        return exc.code, body, exc.headers


@contextmanager
def _server(service, admission=None):
    server = serve_http(service, port=0, admission=admission)
    try:
        yield server
    finally:
        server.stop()


class _StubSolver:
    """Instant deterministic solve_fn, optionally gated on an event."""

    def __init__(self, gate=None):
        self.gate = gate
        self.started = threading.Event()

    def __call__(self, request, tier, cache):
        self.started.set()
        if self.gate is not None:
            assert self.gate.wait(timeout=30.0)
        return {"app": request.app, "n": request.n, "seed": request.seed,
                "budget": tier}


# ----------------------------------------------------------------------
# the byte-identity contract vs the stdio wire format
# ----------------------------------------------------------------------
class TestHttpContract:
    def test_solve_body_is_byte_identical_to_stdio(self):
        """Equal request => the HTTP body IS the serve_stream line."""
        line = json.dumps({"app": "Bitonic", "n": 8, "num_gpus": 2,
                           "budget": "instant"})
        out = io.StringIO()
        with MappingService() as stdio_service:
            failures = serve_stream(
                io.StringIO(line + "\n"), out, stdio_service
            )
        assert failures == 0
        expected = out.getvalue().encode()

        with MappingService() as service:
            with _server(service) as server:
                status, body, headers = _request(
                    server.url + "/api/v1/solve", data=line.encode()
                )
        assert status == 200
        assert body == expected
        # and the contract is meaningful: key/state/dedup ride along
        payload = json.loads(body)
        assert payload["state"] == "done"
        assert payload["dedup"] is None
        assert len(payload["key"]) == 64

    def test_batch_body_is_byte_identical_to_stdio(self):
        """The batch endpoint reproduces the full serve_stream output —
        responses in input order, malformed/blank/comment lines handled
        identically."""
        lines = [
            json.dumps({"app": "Bitonic", "n": 8, "num_gpus": 2,
                        "budget": "instant", "tag": "a"}),
            "",
            "# comment",
            json.dumps({"app": "DES", "n": 4, "num_gpus": 2,
                        "budget": "instant", "tag": "b"}),
            "{malformed",
        ]
        stream = "\n".join(lines) + "\n"
        out = io.StringIO()
        with MappingService() as stdio_service:
            serve_stream(io.StringIO(stream), out, stdio_service)
        expected = out.getvalue().encode()

        with MappingService() as service:
            with _server(service) as server:
                status, body, headers = _request(
                    server.url + "/api/v1/batch", data=stream.encode()
                )
        assert status == 200
        assert headers["Content-Type"] == "application/x-ndjson"
        assert body == expected
        responses = [json.loads(l) for l in body.decode().splitlines()]
        assert [r.get("tag") for r in responses[:2]] == ["a", "b"]
        assert responses[2]["state"] == "failed"  # the malformed line

    def test_solve_rejects_bad_requests_with_400(self):
        with MappingService(solve_fn=_StubSolver()) as service:
            with _server(service) as server:
                for bad in (
                    b"{malformed",
                    json.dumps({"app": "DES", "n": 4, "gpus": 9}).encode(),
                    json.dumps({"app": "NoSuchApp", "n": 4}).encode(),
                    json.dumps({"app": "DES", "n": 4,
                                "budget": "lavish"}).encode(),
                ):
                    status, body, _ = _request(
                        server.url + "/api/v1/solve", data=bad
                    )
                    assert status == 400
                    assert "error" in json.loads(body)
        assert service.stats().submitted == 0

    def test_unknown_paths_get_404(self):
        with MappingService(solve_fn=_StubSolver()) as service:
            with _server(service) as server:
                assert _request(server.url + "/nope")[0] == 404
                assert _request(server.url + "/api/v1/nope",
                                data=b"{}")[0] == 404


# ----------------------------------------------------------------------
# admission control: 429 shedding
# ----------------------------------------------------------------------
class TestAdmission:
    def test_rate_limit_sheds_with_429_and_retry_after(self):
        """A tenant that empties its bucket gets 429 + Retry-After; a
        different tenant's bucket is untouched."""
        admission = AdmissionController(rate=0.01, burst=1.0)
        line = json.dumps({"app": "Bitonic", "n": 8, "num_gpus": 2,
                           "budget": "instant"}).encode()
        with MappingService(solve_fn=_StubSolver()) as service:
            with _server(service, admission) as server:
                url = server.url + "/api/v1/solve"
                ok, _, _ = _request(url, data=line,
                                    headers={"X-Tenant": "alice"})
                assert ok == 200
                status, body, headers = _request(
                    url, data=line, headers={"X-Tenant": "alice"}
                )
                assert status == 429
                payload = json.loads(body)
                assert payload["reason"] == "rate"
                retry = int(headers["Retry-After"])
                assert retry >= 1 and retry == payload["retry_after"]
                # an unrelated tenant still gets through
                assert _request(url, data=line,
                                headers={"X-Tenant": "bob"})[0] == 200
                # anonymous traffic shares the default bucket
                assert _request(url, data=line)[0] == 200
        shed = admission.stats()
        assert shed["shed_rate"] == 1 and shed["admitted"] == 3
        # shed requests never reached the service: keys/dedup untouched
        assert service.stats().submitted == 3

    def test_tier_cost_prices_admission(self):
        """An 'ample' request costs 8 tokens, an 'instant' one 1 — the
        limiter speaks SolveBudget currency."""
        assert [TIER_COST[t] for t in
                ("instant", "small", "default", "ample")] == [1, 2, 4, 8]
        clock = _FakeClock()
        control = AdmissionController(rate=1.0, burst=8.0, clock=clock)
        assert control.admit("t", budget="ample").allowed
        verdict = control.admit("t", budget="instant")
        assert not verdict.allowed and verdict.retry_after == 1.0
        clock.advance(1.0)
        assert control.admit("t", budget="instant").allowed

    def test_queue_depth_bound_sheds_with_429(self):
        """Once max_queue_depth jobs wait, new work sheds instead of
        growing the backlog."""
        gate = threading.Event()
        solver = _StubSolver(gate=gate)
        admission = AdmissionController(rate=1000.0, burst=1000.0,
                                        max_queue_depth=1)

        def post(server, seed, results):
            line = json.dumps({"app": "Bitonic", "n": 8, "num_gpus": 2,
                               "budget": "instant", "seed": seed}).encode()
            results[seed] = _request(server.url + "/api/v1/solve",
                                     data=line)

        results, threads = {}, []
        with MappingService(workers=1, solve_fn=solver) as service:
            with _server(service, admission) as server:
                try:
                    # job 0 occupies the single worker ...
                    threads.append(threading.Thread(
                        target=post, args=(server, 0, results)))
                    threads[-1].start()
                    assert solver.started.wait(10)
                    # ... job 1 fills the queue (depth 1) ...
                    threads.append(threading.Thread(
                        target=post, args=(server, 1, results)))
                    threads[-1].start()
                    deadline = time.monotonic() + 10
                    while (service.queue_depth() < 1
                           and time.monotonic() < deadline):
                        time.sleep(0.01)
                    assert service.queue_depth() == 1
                    # ... job 2 is shed at the door
                    post(server, 2, results)
                finally:
                    gate.set()
                    for thread in threads:
                        thread.join(timeout=30)
        status, body, headers = results[2]
        assert status == 429
        assert json.loads(body)["reason"] == "queue"
        assert "Retry-After" in headers
        assert results[0][0] == 200 and results[1][0] == 200
        assert admission.stats()["shed_queue"] == 1

    def test_batch_charges_the_whole_stream(self):
        """A batch cannot sidestep the per-request rate limit: its cost
        is the sum of per-line tier costs."""
        admission = AdmissionController(rate=0.01, burst=2.0)
        lines = "\n".join(
            json.dumps({"app": "Bitonic", "n": 8, "budget": "instant",
                        "seed": seed})
            for seed in range(3)
        ) + "\n"
        with MappingService(solve_fn=_StubSolver()) as service:
            with _server(service, admission) as server:
                status, body, _ = _request(
                    server.url + "/api/v1/batch", data=lines.encode()
                )
        assert status == 429
        assert json.loads(body)["reason"] == "rate"
        assert service.stats().submitted == 0


# ----------------------------------------------------------------------
# observability: /metrics, /healthz, job polling
# ----------------------------------------------------------------------
class TestObservability:
    def test_metrics_scrape_format(self):
        """The /metrics payload is well-formed Prometheus text: typed
        families, monotone histogram buckets, cache hit rates."""
        line = json.dumps({"app": "Bitonic", "n": 8, "num_gpus": 2,
                           "budget": "instant"}).encode()
        with MappingService(solve_fn=_StubSolver()) as service:
            with _server(service) as server:
                for _ in range(3):  # 1 solve + 2 dedup hits
                    assert _request(server.url + "/api/v1/solve",
                                    data=line)[0] == 200
                status, body, headers = _request(server.url + "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        text = body.decode()
        lines = text.splitlines()

        def value(name):
            for metric_line in lines:
                if metric_line.startswith(name + " "):
                    return float(metric_line.split()[-1])
            raise AssertionError(f"metric {name} missing:\n{text}")

        assert value("repro_service_submitted_total") == 3
        assert value("repro_service_solved_total") == 1
        assert value("repro_service_failed_total") == 0
        assert value("repro_service_queue_depth") == 0
        dedup = sum(
            float(metric_line.split()[-1])
            for metric_line in lines
            if metric_line.startswith("repro_service_dedup_total{")
        )
        assert dedup == 2
        # every family is typed, histogram buckets are cumulative
        for family in ("repro_service_submitted_total",
                       "repro_service_solve_latency_seconds",
                       "repro_stage_cache_hit_rate",
                       "repro_milp_model_cache_size",
                       "repro_admission_admitted_total"):
            assert f"# TYPE {family} " in text
        buckets = [
            float(metric_line.split()[-1])
            for metric_line in lines
            if metric_line.startswith(
                'repro_service_solve_latency_seconds_bucket{tier="instant"')
        ]
        assert buckets and buckets == sorted(buckets)
        count = value(
            'repro_service_solve_latency_seconds_count{tier="instant"}')
        assert count == 1
        assert buckets[-1] == count  # the +Inf bucket equals _count

    def test_healthz_flips_to_503_during_drain(self):
        gate = threading.Event()
        solver = _StubSolver(gate=gate)
        service = MappingService(workers=1, solve_fn=solver)
        with _server(service) as server:
            try:
                assert _request(server.url + "/healthz")[0] == 200
                service.submit(MappingRequest(app="Bitonic", n=8,
                                              num_gpus=2))
                assert solver.started.wait(10)
                closer = threading.Thread(
                    target=service.shutdown, kwargs={"wait": True}
                )
                closer.start()
                deadline = time.monotonic() + 10
                while not service.draining and time.monotonic() < deadline:
                    time.sleep(0.01)
                status, body, _ = _request(server.url + "/healthz")
                assert status == 503
                assert json.loads(body)["status"] == "draining"
            finally:
                gate.set()
                closer.join(timeout=30)

    def test_jobs_endpoint_tracks_the_lifecycle(self):
        gate = threading.Event()
        solver = _StubSolver(gate=gate)
        with MappingService(workers=1, solve_fn=solver) as service:
            with _server(service) as server:
                try:
                    running = service.submit(
                        MappingRequest(app="Bitonic", n=8, num_gpus=2))
                    assert solver.started.wait(10)
                    queued = service.submit(
                        MappingRequest(app="DES", n=4, num_gpus=2))

                    def job(key):
                        status, body, _ = _request(
                            server.url + f"/api/v1/jobs/{key}")
                        return status, json.loads(body)

                    status, payload = job(running.key)
                    assert status == 200 and payload["state"] == "running"
                    status, payload = job(queued.key)
                    assert status == 200 and payload["state"] == "queued"
                    assert job("no-such-key")[0] == 404
                finally:
                    gate.set()
                running.result(timeout=30)
                queued.result(timeout=30)
                status, payload = job(queued.key)
                assert status == 200
                assert payload["state"] == "done"
                assert payload["result"]["app"] == "DES"
