"""Tests for the convexity oracle and Try-Merge."""

import pytest

from repro.graph.builder import GraphBuilder, linear_pipeline_graph
from repro.graph.filters import FilterRole, FilterSpec, sink, source
from repro.graph.flatten import flatten
from repro.graph.structure import duplicate, join_roundrobin, pipeline, splitjoin
from repro.partition.convexity import ConvexityOracle
from repro.partition.merge import MergeContext
from repro.perf.engine import PerformanceEstimationEngine


def _f(name, pop, push, **kw):
    return FilterSpec(name=name, pop=pop, push=push, **kw)


def _diamond(work=50.0):
    sj = splitjoin(
        duplicate(4, 2),
        [_f("left", 4, 4, work=work), _f("right", 4, 4, work=work)],
        join_roundrobin(4, 4),
    )
    return flatten(pipeline(source("s", 4), sj, sink("t", 8)), "diamond")


class TestConvexityOracle:
    def test_mask_roundtrip(self):
        mask = ConvexityOracle.mask_of([0, 3, 5])
        assert ConvexityOracle.members_of(mask) == [0, 3, 5]

    def test_chain_prefix_is_convex(self):
        g = linear_pipeline_graph("c", stages=3)
        oracle = ConvexityOracle(g)
        order = g.topological_order()
        assert oracle.is_convex(oracle.mask_of(order[:3]))

    def test_chain_with_gap_is_not_convex(self):
        g = linear_pipeline_graph("c", stages=3)
        oracle = ConvexityOracle(g)
        order = g.topological_order()
        gap = [order[0], order[2]]  # skips order[1]
        assert not oracle.is_convex(oracle.mask_of(gap))

    def test_one_branch_plus_endpoints_is_convex(self):
        g = _diamond()
        oracle = ConvexityOracle(g)
        ids = [
            g.node_by_name(n).node_id
            for n in ("left",)
        ]
        assert oracle.is_convex(oracle.mask_of(ids))

    def test_split_and_join_without_branches_not_convex(self):
        g = _diamond()
        oracle = ConvexityOracle(g)
        splitter = next(n for n in g.nodes if n.spec.role is FilterRole.SPLITTER)
        joiner = next(n for n in g.nodes if n.spec.role is FilterRole.JOINER)
        mask = oracle.mask_of([splitter.node_id, joiner.node_id])
        assert not oracle.is_convex(mask)

    def test_adjacency(self):
        g = linear_pipeline_graph("c", stages=2)
        oracle = ConvexityOracle(g)
        order = g.topological_order()
        a = oracle.mask_of(order[:1])
        b = oracle.mask_of(order[1:2])
        c = oracle.mask_of(order[2:3])
        assert oracle.adjacent(a, b)
        assert not oracle.adjacent(a, c)

    def test_neighbors_mask_excludes_self(self):
        g = linear_pipeline_graph("c", stages=2)
        oracle = ConvexityOracle(g)
        order = g.topological_order()
        mask = oracle.mask_of(order[:2])
        nbrs = oracle.neighbors_mask(mask)
        assert not (nbrs & mask)
        assert nbrs  # the next node in the chain


class TestMergeContext:
    def _ctx(self, graph):
        return MergeContext(PerformanceEstimationEngine(graph))

    def test_disconnected_sets_do_not_merge(self):
        g = linear_pipeline_graph("m", stages=3, work=2000.0)
        ctx = self._ctx(g)
        order = g.topological_order()
        assert not ctx.can_merge(1 << order[0], 1 << order[2])

    def test_disjointness_enforced(self):
        g = linear_pipeline_graph("m", stages=2)
        ctx = self._ctx(g)
        with pytest.raises(ValueError):
            ctx.can_merge(0b11, 0b10)

    def test_non_convex_union_rejected(self):
        g = _diamond()
        ctx = self._ctx(g)
        splitter = next(n for n in g.nodes if n.spec.role is FilterRole.SPLITTER)
        joiner = next(n for n in g.nodes if n.spec.role is FilterRole.JOINER)
        assert not ctx.can_merge(1 << splitter.node_id, 1 << joiner.node_id)

    def test_io_bound_neighbors_merge(self):
        # zero-work copy chain: merging removes boundary traffic, so the
        # PEE must prefer the union
        g = linear_pipeline_graph("m", stages=2, rate=256, work=0.0)
        ctx = self._ctx(g)
        a = g.node_by_name("stage0").node_id
        b = g.node_by_name("stage1").node_id
        assert ctx.can_merge(1 << a, 1 << b)

    def test_can_merge_many_requires_connectivity(self):
        g = linear_pipeline_graph("m", stages=4, rate=64, work=0.0)
        ctx = self._ctx(g)
        s0 = 1 << g.node_by_name("stage0").node_id
        s1 = 1 << g.node_by_name("stage1").node_id
        s3 = 1 << g.node_by_name("stage3").node_id
        assert not ctx.can_merge_many([s0, s3])
        assert ctx.can_merge_many([s0, s1])

    def test_can_merge_many_spill_control(self):
        # a graph far larger than the SM: merging everything spills
        g = linear_pipeline_graph("big", stages=4, rate=9000, work=0.0)
        ctx = self._ctx(g)
        masks = [1 << n.node_id for n in g.graph.nodes] if hasattr(g, "graph") else [
            1 << n.node_id for n in g.nodes
        ]
        assert not ctx.can_merge_many(masks, allow_spill=False)
