"""Targeted tests for remaining lightly-covered paths."""

import math

import pytest

from repro.apps.registry import build_app
from repro.experiments.common import _fmt
from repro.flow import map_stream_graph
from repro.graph.builder import linear_pipeline_graph
from repro.gpu.kernel import DEFAULT_CONFIG, KernelConfig
from repro.gpu.simulator import KernelSimulator, SimCosts
from repro.gpu.specs import M2090, LinkSpec
from repro.gpu.topology import default_topology
from repro.mapping.problem import MappingProblem
from repro.mapping.result import make_result
from repro.mapping.solver_milp import solve_milp
from repro.perf.engine import PerformanceEstimationEngine
from repro.runtime.executor import _Timeline


class TestTimeline:
    def test_empty_timeline_starts_at_ready(self):
        tl = _Timeline()
        assert tl.earliest_slot(5.0, 10.0) == 5.0

    def test_backfill_into_gap(self):
        tl = _Timeline()
        tl.book(0.0, 10.0)
        tl.book(20.0, 30.0)
        assert tl.earliest_slot(0.0, 10.0) == 10.0  # exact gap fit
        assert tl.earliest_slot(0.0, 11.0) == 30.0  # too big for the gap

    def test_ready_inside_busy_interval(self):
        tl = _Timeline()
        tl.book(0.0, 10.0)
        assert tl.earliest_slot(5.0, 1.0) == 10.0

    def test_book_keeps_sorted(self):
        tl = _Timeline()
        tl.book(20.0, 30.0)
        tl.book(0.0, 10.0)
        assert tl.earliest_slot(0.0, 5.0) == 10.0


class TestMappingResultExtras:
    def test_make_result_stats_passthrough(self):
        p = MappingProblem(
            times=[1.0], edges={}, host_io=[(0.0, 0.0)],
            topology=default_topology(1, LinkSpec(6.0, 10.0)),
        )
        res = make_result(p, [0], "test", True, stats=(("k", 1.0),))
        assert res.solve_stats == (("k", 1.0),)
        assert res.bottleneck == "compute"

    def test_milp_reports_status(self):
        p = MappingProblem(
            times=[5.0, 4.0], edges={}, host_io=[(0.0, 0.0)] * 2,
            topology=default_topology(2, LinkSpec(6.0, 10.0)),
        )
        res = solve_milp(p)
        assert any(k == "milp_status" for k, _ in res.solve_stats)


class TestSimCostVariants:
    def test_custom_costs_change_results(self):
        g = linear_pipeline_graph("c", stages=2, rate=32, work=100.0)
        members = [n.node_id for n in g.nodes]
        cfg = KernelConfig(1, 1, 32)
        cheap = KernelSimulator(M2090, costs=SimCosts(launch_ns=0.0))
        dear = KernelSimulator(M2090, costs=SimCosts(launch_ns=9000.0))
        m_cheap = cheap.measure(g, members, cfg)
        m_dear = dear.measure(g, members, cfg)
        assert cheap.fragment_time(m_cheap, 16) < dear.fragment_time(m_dear, 16)

    def test_default_config_constant(self):
        assert DEFAULT_CONFIG.s == 1 and DEFAULT_CONFIG.w == 1
        assert DEFAULT_CONFIG.f == 32

    def test_conflict_scale_range_respected(self):
        costs = SimCosts(conflict_probability=1.0)
        sim = KernelSimulator(M2090, costs=costs)
        g = linear_pipeline_graph("k", stages=2, rate=64, work=500.0)
        members = [n.node_id for n in g.nodes]
        m = sim.measure(g, members, KernelConfig(1, 1, 64))
        overlap = min(m.t_comp, m.t_dt)
        lo, hi = costs.conflict_scale
        assert lo * overlap <= m.conflict_penalty <= hi * overlap


class TestEngineExtras:
    def test_launch_overhead_shrinks_with_w(self):
        g = build_app("Bitonic", 8)
        engine = PerformanceEstimationEngine(g)
        small = engine.estimate([g.nodes[0].node_id])
        assert small.launch_overhead_per_execution == pytest.approx(
            engine.simulator.costs.launch_ns
            / (small.config.w * M2090.sm_count)
        )

    def test_t_includes_launch(self):
        g = build_app("Bitonic", 8)
        engine = PerformanceEstimationEngine(g)
        est = engine.estimate([g.nodes[0].node_id])
        assert est.t == pytest.approx(
            est.estimate.per_execution + est.launch_overhead_per_execution
        )


class TestExperimentFormatting:
    @pytest.mark.parametrize(
        "value,expected",
        [(0.0, "0"), (123.4, "123"), (5.678, "5.68"), (0.1234, "0.123"),
         ("text", "text"), (7, "7")],
    )
    def test_fmt(self, value, expected):
        assert _fmt(value) == expected


class TestHostDtlistAndRoutes:
    def test_three_gpu_topology_asymmetric(self):
        topo = default_topology(3)
        # gpu0/gpu1 are siblings under sw2; gpu2 sits alone under sw3
        assert len(topo.route(0, 1)) == 2
        assert len(topo.route(0, 2)) == 4

    def test_route_symmetry_in_length(self):
        topo = default_topology(4)
        for a in range(4):
            for b in range(4):
                assert len(topo.route(a, b)) == len(topo.route(b, a))

    def test_uplink_downlink_pairing(self):
        topo = default_topology(2)
        ups = [l for l in topo.links if l.up]
        downs = [l for l in topo.links if not l.up]
        assert len(ups) == len(downs) == topo.num_links // 2


class TestFlowWithFragmentScaling:
    def test_throughput_invariant_to_fragment_count(self):
        """Once the pipeline is full, doubling the fragment count must not
        change steady-state throughput much."""
        g = build_app("MatMul2", 3)
        from repro.runtime.fragments import FragmentPlan

        engine = PerformanceEstimationEngine(g)
        a = map_stream_graph(g, num_gpus=2, engine=engine,
                             plan=FragmentPlan(16, 128))
        b = map_stream_graph(g, num_gpus=2, engine=engine,
                             plan=FragmentPlan(32, 128))
        assert b.report.beat_ns == pytest.approx(a.report.beat_ns, rel=0.15)
