"""Sweep-engine integration of synthetic corpora: the ``synth_cases``
axis, prefix grouping, stage caching, and cached-replay determinism."""

from repro.sweep import StageCache, SweepRunner, SweepSpec
from repro.sweep.spec import group_points


class TestSynthAxis:
    def test_size_and_expand(self):
        spec = SweepSpec(
            cases=[("DES", 4)],
            synth_cases=[("pipeline", 3), ("dag", 7)],
            gpu_counts=(1, 2),
        )
        points = spec.expand()
        assert spec.size() == len(points) == 6
        apps = {p.app for p in points}
        assert apps == {"DES", "synth:pipeline", "synth:dag"}
        # seeds ride in n
        assert {p.n for p in points if p.app == "synth:dag"} == {7}

    def test_accepts_prefixed_and_bare_family_names(self):
        spec = SweepSpec(
            synth_cases=[("pipeline", 1), ("synth:dag;layers=3", 2)]
        )
        apps = [p.app for p in spec.expand()]
        assert apps == ["synth:pipeline", "synth:dag;layers=3"]

    def test_synth_points_group_like_apps(self):
        spec = SweepSpec(
            synth_cases=[("pipeline", 1), ("pipeline", 2)],
            gpu_counts=(1, 2),
            mappers=("ilp", "lpt"),
        )
        groups = group_points(spec.expand())
        assert [len(g) for g in groups] == [4, 4]
        assert groups[0][0].group_key() != groups[1][0].group_key()


class TestSynthSweepExecution:
    def test_cached_rerun_is_bit_identical(self):
        spec = SweepSpec(
            synth_cases=[("pipeline", 3), ("splitjoin", 1)],
            gpu_counts=(2,),
            mappers=("ilp", "lpt"),
        )
        cache = StageCache()
        first = SweepRunner(cache=cache).run(spec)
        second = SweepRunner(cache=cache).run(spec)
        assert [r.assignment for r in first.records] == [
            r.assignment for r in second.records
        ]
        assert [r.tmax for r in first.records] == [
            r.tmax for r in second.records
        ]
        # the replay served every stage from the cache
        assert second.cache_stats.misses == 0
        assert second.cache_stats.hits > 0

    def test_distinct_seeds_never_share_cache_entries(self):
        """Cache-key separation at the runner level: two seeds of one
        family must not hit each other's stage results."""
        cache = StageCache()
        SweepRunner(cache=cache).run(
            SweepSpec(synth_cases=[("dag", 1)], gpu_counts=(2,))
        )
        baseline = cache.stats().to_json()
        result = SweepRunner(cache=cache).run(
            SweepSpec(synth_cases=[("dag", 2)], gpu_counts=(2,))
        )
        assert result.cache_stats.hits == 0, (
            "seed-2 sweep replayed seed-1 stage results: fingerprint "
            "collision"
        )
        assert cache.stats().to_json() != baseline

    def test_synth_and_bundled_cases_mix(self):
        spec = SweepSpec(
            cases=[("Bitonic", 8)],
            synth_cases=[("butterfly", 1)],
            gpu_counts=(1,),
        )
        result = SweepRunner(cache=StageCache()).run(spec)
        assert len(result) == 2
        assert all(rec.throughput > 0 for rec in result.records)
