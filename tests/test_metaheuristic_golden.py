"""Golden regression: the metaheuristic tier's answers are pinned.

``tests/golden/metaheuristic/pinned_metaheuristic.json`` holds the
(assignment, tmax, rescore-count) triple of ``solve_metaheuristic``
under a pinned configuration (rounds/population/seed recorded in the
file) for the pinned 30-instance corpus on three machines — the same
90 combos ``tests/golden/kernel/`` pins for the older solvers.

The file is **never refreshed**: the solver is deterministic by
contract (SplitMix64 RNG, absolute-round temperature schedule, batch
scores bit-identical between the NumPy and pure-python paths), so any
drift — a reordered RNG draw, a changed fold, a NumPy-vs-fallback
divergence — is a bug, not a golden update; see docs/PERFORMANCE.md.
"""

import json
from pathlib import Path

import pytest

import repro.mapping.batch as batch_mod
from repro.flow import partition_stage, pdg_stage, profile_stage
from repro.gpu.platforms import build_platform
from repro.gpu.topology import default_topology
from repro.mapping.metaheuristic import solve_metaheuristic
from repro.mapping.problem import build_mapping_problem
from repro.synth.corpus import PINNED_CORPUS, generate_corpus

GOLDEN_DIR = Path(__file__).parent / "golden" / "metaheuristic"
GOLDEN = GOLDEN_DIR / "pinned_metaheuristic.json"


@pytest.fixture(scope="module")
def golden():
    with GOLDEN.open() as fh:
        return json.load(fh)


@pytest.fixture(scope="module")
def problems():
    out = {}
    for inst in generate_corpus(PINNED_CORPUS):
        graph = inst.graph
        label = inst.spec.instance_name
        engine = profile_stage(graph)
        partitions, partitioning = partition_stage(graph, engine)
        pdg = pdg_stage(graph, partitions, engine, partitioning=partitioning)
        order = list(pdg.topological_order())
        for tag, topo in (
            ("g2", default_topology(2)),
            ("g4", default_topology(4)),
            ("mixed-box", build_platform("mixed-box")),
        ):
            problem = build_mapping_problem(pdg, topo.num_gpus, topology=topo)
            out[f"{label}@{tag}"] = (problem, order)
    return out


def _solve(problem, order, config):
    return solve_metaheuristic(
        problem, topo_order=order, rounds=config["rounds"],
        population=config["population"], seed=config["seed"],
    )


def test_golden_dir_has_no_stale_files(golden):
    """Never-refresh guard: exactly the one pinned file, nothing else —
    a stray regenerated or renamed file is a review problem, not data."""
    assert sorted(p.name for p in GOLDEN_DIR.iterdir()) == [GOLDEN.name]
    assert set(golden) == {"combos", "config"}


def test_golden_covers_every_combo(golden, problems):
    assert set(golden["combos"]) == set(problems)
    for label, (problem, _order) in problems.items():
        combo = golden["combos"][label]
        assert combo["num_partitions"] == problem.num_partitions
        assert combo["num_gpus"] == problem.num_gpus


def test_metaheuristic_answers_unchanged(golden, problems):
    config = golden["config"]
    for label, (problem, order) in sorted(problems.items()):
        want = golden["combos"][label]
        got = _solve(problem, order, config)
        assert list(got.assignment) == want["assignment"], label
        assert got.tmax == want["tmax"], label
        stats = dict(got.solve_stats)
        assert stats["mh_rescores"] == want["mh_rescores"], label
        # the exact-accept contract, re-pinned on every golden combo
        assert got.tmax == problem.tmax(list(got.assignment)), label


def test_fallback_path_matches_golden(golden, problems, monkeypatch):
    """NumPy-vs-fallback equality at the solver level: with NumPy
    force-hidden the whole trajectory must replay bit-identically."""
    monkeypatch.setattr(batch_mod, "_np", None)
    config = golden["config"]
    for label in sorted(problems)[::17]:  # a cross-family spot sample
        problem, order = problems[label]
        want = golden["combos"][label]
        got = _solve(problem, order, config)
        assert list(got.assignment) == want["assignment"], label
        assert got.tmax == want["tmax"], label
