"""Anytime solver portfolio + deterministic solve budgets.

Pins the three service-level solver guarantees on the pinned synthetic
corpus: every budget tier returns a *valid* mapping, a larger budget
never returns a *worse* mapping (anytime monotonicity), and an ample
budget lands on the MILP optimum the differential harness certifies.
Plus the satellite regression of this PR: ``solve_milp`` under the
default budget is deterministic across back-to-back runs — the 10 s
wall-clock limit (and its load-dependent results) is opt-in now.
"""

import math
from dataclasses import replace

import pytest

from repro.flow import partition_stage, pdg_stage, profile_stage
from repro.gpu.topology import default_topology
from repro.mapping.budget import (
    BUDGET_TIERS,
    TIER_ORDER,
    WALL_CLOCK_ENV,
    SolveBudget,
)
from repro.mapping.problem import MappingProblem, build_mapping_problem
from repro.mapping.solver_bb import solve_branch_and_bound
from repro.mapping.solver_milp import MilpNoIncumbent, solve_milp
from repro.service import portfolio as portfolio_mod
from repro.service.portfolio import (
    solve_portfolio,
    tier_for_deadline,
)
from repro.synth.corpus import PINNED_CORPUS, generate_corpus
from repro.synth.diffcheck import REL_TOL

NUM_GPUS = 2


@pytest.fixture(scope="module")
def corpus_problems():
    """(label, MappingProblem, topo order) for every pinned instance."""
    out = []
    for instance in generate_corpus(PINNED_CORPUS):
        graph = instance.graph
        engine = profile_stage(graph)
        partitions, partitioning = partition_stage(graph, engine)
        pdg = pdg_stage(graph, partitions, engine, partitioning=partitioning)
        problem = build_mapping_problem(
            pdg, NUM_GPUS, topology=default_topology(NUM_GPUS)
        )
        out.append(
            (instance.spec.instance_name, problem, pdg.topological_order())
        )
    return out


@pytest.fixture(scope="module")
def tier_answers(corpus_problems):
    """Portfolio answers for every (instance, tier) pair."""
    return {
        (label, tier): solve_portfolio(problem, budget=tier, topo_order=order)
        for label, problem, order in corpus_problems
        for tier in TIER_ORDER
    }


def _assert_valid(problem, result):
    assert len(result.assignment) == problem.num_partitions
    assert all(0 <= gpu < problem.num_gpus for gpu in result.assignment)
    rescored = problem.tmax(list(result.assignment))
    assert result.tmax == pytest.approx(rescored, rel=REL_TOL)


class TestPortfolioOnPinnedCorpus:
    def test_every_tier_returns_a_valid_mapping(
        self, corpus_problems, tier_answers
    ):
        for label, problem, _ in corpus_problems:
            for tier in TIER_ORDER:
                answer = tier_answers[(label, tier)]
                _assert_valid(problem, answer.mapping)
                assert answer.status in ("optimal", "feasible")
                assert answer.budget == tier
                # the greedy floor always ran, whatever the budget
                assert answer.stage("greedy").ran

    def test_anytime_monotonicity(self, corpus_problems, tier_answers):
        """Escalating the budget tier never worsens the objective."""
        for label, _, _ in corpus_problems:
            tmaxes = [
                tier_answers[(label, tier)].mapping.tmax
                for tier in TIER_ORDER
            ]
            for cheap, rich in zip(tmaxes, tmaxes[1:]):
                assert rich <= cheap * (1.0 + REL_TOL), (
                    f"{label}: larger budget worsened tmax "
                    f"({cheap:.6g} -> {rich:.6g})"
                )

    def test_ample_budget_matches_milp_optimum(
        self, corpus_problems, tier_answers
    ):
        """The top tier lands on the optimum diffcheck certifies."""
        gap_free = replace(SolveBudget.tier("ample"), mip_rel_gap=0.0)
        for label, problem, _ in corpus_problems:
            reference = solve_milp(problem, budget=gap_free)
            if not reference.optimal:  # pragma: no cover - tiny instances
                continue
            answer = tier_answers[(label, "ample")]
            assert answer.status == "optimal"
            assert answer.mapping.tmax == pytest.approx(
                reference.tmax, rel=REL_TOL
            ), f"{label}: ample portfolio missed the MILP optimum"

    def test_instant_tier_skips_exact_solvers(self, corpus_problems):
        _, problem, order = corpus_problems[0]
        answer = solve_portfolio(problem, budget="instant", topo_order=order)
        assert not answer.stage("branch-and-bound").ran
        assert not answer.stage("milp").ran
        assert answer.status == "feasible"


class TestPortfolioMechanics:
    def _chain(self, times=(400e3, 300e3, 200e3, 100e3)):
        return MappingProblem(
            times=list(times),
            edges={(0, 1): 128.0, (1, 2): 128.0, (2, 3): 128.0},
            host_io=[(128.0, 0.0)] + [(0.0, 0.0)] * (len(times) - 2)
            + [(0.0, 128.0)],
            topology=default_topology(2),
        )

    def test_deadline_zero_stops_after_greedy(self):
        answer = solve_portfolio(self._chain(), budget="ample", deadline_s=0.0)
        assert answer.stage("greedy").ran
        assert not answer.stage("milp").ran
        assert "deadline" in answer.stage("milp").note
        assert answer.mapping.tmax > 0

    def test_winner_names_the_producing_stage(self):
        answer = solve_portfolio(self._chain(), budget="ample")
        assert answer.mapping.solver == f"portfolio[{answer.winner}]"
        assert answer.winner in (
            "greedy", "refine", "branch-and-bound", "milp"
        )

    def test_unknown_stage_raises(self):
        answer = solve_portfolio(self._chain(), budget="instant")
        with pytest.raises(KeyError):
            answer.stage("simulated-annealing")

    def test_milp_skipped_once_bb_proves_optimality(self, monkeypatch):
        calls = []
        monkeypatch.setattr(
            portfolio_mod, "solve_milp",
            lambda *a, **k: calls.append(1),
        )
        answer = solve_portfolio(self._chain(), budget="ample")
        assert answer.status == "optimal"
        assert calls == []
        assert "proven" in answer.stage("milp").note

    def test_milp_no_incumbent_keeps_best_so_far(self, monkeypatch):
        def no_incumbent(*args, **kwargs):
            raise MilpNoIncumbent("budget exhausted, no incumbent")

        monkeypatch.setattr(portfolio_mod, "solve_milp", no_incumbent)
        budget = replace(SolveBudget.tier("default"), use_bb=False)
        answer = solve_portfolio(self._chain(), budget=budget)
        assert answer.status == "feasible"
        assert math.isfinite(answer.mapping.tmax)
        assert "no incumbent" in answer.stage("milp").note

    def test_optimal_claim_requires_certifying_the_returned_best(
        self, monkeypatch
    ):
        """A stage can be 'optimal' (e.g. MILP modulo its mip_rel_gap)
        while the portfolio holds a strictly better incumbent from a
        capped stage — stamping optimal=True on that incumbent would
        claim a proof nothing produced."""
        from repro.mapping.result import make_result

        problem = self._chain()
        everything_on_gpu0 = [0] * problem.num_partitions

        def gap_optimal_milp(problem, budget=None, incumbent=None, **kwargs):
            # a gap-satisfying "optimal" answer strictly worse than what
            # the heuristic stages already hold
            return make_result(
                problem, everything_on_gpu0, "milp", optimal=True,
                stats=(("milp_status", 0.0),),
            )

        monkeypatch.setattr(portfolio_mod, "solve_milp", gap_optimal_milp)
        budget = replace(SolveBudget.tier("default"), use_bb=False)
        answer = solve_portfolio(problem, budget=budget)
        milp_stage = answer.stage("milp")
        assert milp_stage.ran and milp_stage.optimal
        assert answer.mapping.tmax < problem.tmax(everything_on_gpu0)
        # the certifying stage certified *its own* tmax, not the best
        assert answer.status == "feasible"
        assert not answer.mapping.optimal

    def test_tier_for_deadline_ladder(self):
        assert tier_for_deadline(60.0) == "ample"
        assert tier_for_deadline(2.0) == "default"
        assert tier_for_deadline(0.5) == "small"
        assert tier_for_deadline(0.01) == "instant"
        assert tier_for_deadline(-1.0) == "instant"


class TestSolveBudget:
    def test_tiers_are_superset_ordered(self):
        """Each tier must do at least the work of the one before it —
        the structural property monotonicity rests on."""
        previous = None
        for name in TIER_ORDER:
            tier = BUDGET_TIERS[name]
            if previous is not None:
                assert tier.refine_steps >= previous.refine_steps
                assert tier.use_bb >= previous.use_bb
                assert tier.use_milp >= previous.use_milp
                if previous.use_bb:
                    assert tier.bb_node_limit >= previous.bb_node_limit
            previous = tier

    def test_unknown_tier_raises(self):
        with pytest.raises(ValueError, match="unknown budget tier"):
            SolveBudget.tier("extravagant")

    def test_bare_budget_is_the_default_tier(self):
        """Customizing one knob must keep every other limit at the
        documented default-tier value."""
        assert SolveBudget() == SolveBudget.tier("default")
        custom = replace(SolveBudget(), milp_node_limit=500)
        assert custom.bb_node_limit == BUDGET_TIERS["default"].bb_node_limit

    def test_default_is_deterministic_unless_opted_in(self, monkeypatch):
        monkeypatch.delenv(WALL_CLOCK_ENV, raising=False)
        assert SolveBudget.default().time_limit_s is None
        monkeypatch.setenv(WALL_CLOCK_ENV, "7.5")
        assert SolveBudget.default().time_limit_s == 7.5

    def test_wall_clock_is_part_of_the_cache_key(self):
        dry = SolveBudget.tier("default").key_parts()
        wet = SolveBudget.tier("default").with_wall_clock(5.0).key_parts()
        assert dry != wet

    def test_zero_wall_clock_means_no_limit(self, monkeypatch):
        """``REPRO_MILP_TIME_LIMIT_S=0`` used to pass string-truthiness
        and set a 0.0 cap the solver silently ignored — while changing
        every budget-derived cache key.  Zero and empty mean *unset*."""
        # the env-var call path
        monkeypatch.setenv(WALL_CLOCK_ENV, "0")
        assert SolveBudget.default().time_limit_s is None
        assert SolveBudget.default() == SolveBudget.tier("default")
        monkeypatch.setenv(WALL_CLOCK_ENV, "")
        assert SolveBudget.default().time_limit_s is None
        # the explicit-argument call path
        assert SolveBudget.tier("ample").with_wall_clock(0).time_limit_s is None
        assert SolveBudget.tier("ample").with_wall_clock(None).time_limit_s is None
        # ...and direct construction, so no zero cap can enter a key
        assert (
            SolveBudget(time_limit_s=0.0).key_parts()
            == SolveBudget().key_parts()
        )

    def test_negative_wall_clock_is_rejected(self, monkeypatch):
        monkeypatch.setenv(WALL_CLOCK_ENV, "-3")
        with pytest.raises(ValueError, match="wall-clock"):
            SolveBudget.default()
        with pytest.raises(ValueError, match="wall-clock"):
            SolveBudget.tier("default").with_wall_clock(-1.0)


class _KeyRecorder:
    """A cache stub that records lookup keys and stores nothing."""

    def __init__(self):
        self.keys = []

    def get(self, key):
        self.keys.append(key)
        return None

    def put(self, key, value):
        pass


class TestBudgetCacheKeys:
    def _mapping_key(self):
        from repro.flow import mapping_stage, partition_stage, pdg_stage, profile_stage
        from repro.synth.families import generate

        graph = generate("pipeline", 1).graph
        engine = profile_stage(graph)
        partitions, partitioning = partition_stage(graph, engine)
        pdg = pdg_stage(graph, partitions, engine, partitioning=partitioning)
        recorder = _KeyRecorder()
        mapping_stage(pdg, 2, engine, cache=recorder)
        return [k for k in recorder.keys if k.startswith("mapping.")][0]

    def test_env_wall_clock_changes_the_mapping_cache_key(self, monkeypatch):
        """A wall-clock-limited solve is load-dependent, so it must
        never be replayed as a deterministic default-budget result."""
        monkeypatch.delenv(WALL_CLOCK_ENV, raising=False)
        deterministic = self._mapping_key()
        assert deterministic == self._mapping_key()  # stable
        monkeypatch.setenv(WALL_CLOCK_ENV, "10.0")
        assert self._mapping_key() != deterministic


class TestDeterministicMilp:
    def test_back_to_back_solves_are_identical(self, corpus_problems):
        """The acceptance pin: the default budget has no wall clock, so
        two consecutive solves of one instance agree exactly."""
        # the largest pinned instance is the most search-heavy
        label, problem, _ = max(
            corpus_problems, key=lambda item: item[1].num_partitions
        )
        first = solve_milp(problem)
        second = solve_milp(problem)
        assert first.assignment == second.assignment, label
        assert first.tmax == second.tmax
        assert first.optimal == second.optimal

    def test_capped_solve_reports_incumbent(self, corpus_problems):
        _, problem, _ = max(
            corpus_problems, key=lambda item: item[1].num_partitions
        )
        tiny = replace(SolveBudget.tier("default"), milp_node_limit=1)
        result = solve_milp(problem, budget=tiny)
        # HiGHS either proves optimality at the root or stops at the cap
        # with a usable incumbent; both must score consistently
        assert len(result.assignment) == problem.num_partitions
        assert result.tmax == pytest.approx(
            problem.tmax(list(result.assignment)), rel=REL_TOL
        )
        stats = dict(result.solve_stats)
        assert "milp_status" in stats

    def test_legacy_wall_clock_argument_still_works(self):
        problem = MappingProblem(
            times=[5.0, 4.0], edges={}, host_io=[(0.0, 0.0)] * 2,
            topology=default_topology(2),
        )
        result = solve_milp(problem, time_limit_s=5.0)
        assert result.optimal

    def test_zero_wall_clock_argument_means_unlimited(self):
        """``time_limit_s=0`` through the legacy solver argument is the
        no-limit solve, not a zero-second one (and not a distinct
        budget): the solve must succeed and prove optimality."""
        problem = MappingProblem(
            times=[5.0, 4.0], edges={}, host_io=[(0.0, 0.0)] * 2,
            topology=default_topology(2),
        )
        result = solve_milp(problem, time_limit_s=0)
        assert result.optimal


class TestBranchAndBoundSeeding:
    def test_injected_incumbent_is_never_worsened(self, corpus_problems):
        _, problem, _ = corpus_problems[0]
        seed = [0] * problem.num_partitions
        result = solve_branch_and_bound(problem, incumbent=seed)
        assert result.tmax <= problem.tmax(seed) * (1.0 + REL_TOL)

    def test_bad_incumbent_length_raises(self, corpus_problems):
        _, problem, _ = corpus_problems[0]
        with pytest.raises(ValueError, match="incumbent length"):
            solve_branch_and_bound(problem, incumbent=[0])

    def test_budget_supplies_the_node_cap(self, corpus_problems):
        _, problem, _ = max(
            corpus_problems, key=lambda item: item[1].num_partitions
        )
        stingy = replace(SolveBudget.tier("small"), bb_node_limit=1)
        result = solve_branch_and_bound(problem, budget=stingy)
        assert not result.optimal
        assert dict(result.solve_stats)["nodes"] <= 2
