"""Tests for the SOSP metric and statistics helpers."""

import pytest

from repro.gpu.specs import C2070, M2090
from repro.metrics.sosp import SospAnalysis, sosp, sosp_validity_bound
from repro.metrics.stats import geometric_mean, r_squared
from repro.runtime.executor import ExecutionReport


def _report(makespan, frags=4, execs=128):
    return ExecutionReport(
        makespan_ns=makespan,
        num_fragments=frags,
        executions_per_fragment=execs,
        gpu_busy_ns=(makespan,),
        link_busy_ns=(0.0,),
        first_fragment_done_ns=makespan / frags,
    )


class TestStats:
    def test_r_squared_perfect(self):
        assert r_squared([1, 2, 3], [1, 2, 3]) == pytest.approx(1.0)

    def test_r_squared_penalizes_errors(self):
        good = r_squared([1.0, 2.0, 3.0], [1.1, 2.0, 2.9])
        bad = r_squared([3.0, 1.0, 2.0], [1.0, 3.0, 2.0])
        assert good > 0.9 > bad

    def test_r_squared_validation(self):
        with pytest.raises(ValueError):
            r_squared([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            r_squared([], [])

    def test_r_squared_constant_actual(self):
        assert r_squared([2.0, 2.0], [2.0, 2.0]) == 1.0

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert geometric_mean([2.0, 2.0, 2.0]) == pytest.approx(2.0)

    def test_geometric_mean_validation(self):
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, -1.0])


class TestSosp:
    def test_sosp_is_throughput_ratio(self):
        fast = _report(1000.0)
        slow = _report(4000.0)
        assert sosp(fast, slow) == pytest.approx(4.0)

    def test_validity_bound_matches_paper(self):
        # compute +29%, bandwidth +23% -> 2 * 6% ~ 12%
        assert sosp_validity_bound(C2070, M2090) == pytest.approx(0.12, abs=0.02)

    def test_analysis_error(self):
        analysis = SospAnalysis("app", 8, 4, sosp_g1=2.0, sosp_g2=2.1)
        assert analysis.relative_error == pytest.approx(0.05)
        assert analysis.within_bound()

    def test_analysis_out_of_bound(self):
        analysis = SospAnalysis("app", 8, 4, sosp_g1=2.0, sosp_g2=3.0)
        assert not analysis.within_bound()

    def test_zero_baseline(self):
        analysis = SospAnalysis("app", 8, 4, sosp_g1=0.0, sosp_g2=1.0)
        assert analysis.relative_error == float("inf")
