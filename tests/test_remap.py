"""The remap service surface: keys, dedup, wire formats, byte-identity.

Remap requests are content-addressed over the base solve request *plus*
the degradation context (deltas, deployed assignment, alpha) — so
repairs dedup exactly like solves, and nothing about the degradation is
invisible to the key.  The HTTP endpoint must answer byte-identically
to the same request on a ``serve_stream`` stdio line.
"""

import io
import json
import urllib.error
import urllib.request
from contextlib import contextmanager

import pytest

from repro.gpu import PlatformDelta
from repro.service import (
    MappingRequest,
    MappingService,
    RemapRequest,
    remap_from_json,
    remap_request_key,
    remap_to_json,
    serve_http,
    serve_stream,
    solve_remap_request,
)


def _base(**overrides):
    fields = dict(app="Bitonic", n=8, platform="host-star",
                  budget="instant")
    fields.update(overrides)
    return MappingRequest(**fields)


def _remap(**overrides):
    fields = dict(base=_base(),
                  deltas=(PlatformDelta.kill_gpu(1),))
    fields.update(overrides)
    return RemapRequest(**fields)


def _post(url, payload):
    req = urllib.request.Request(
        url, data=json.dumps(payload).encode(), method="POST")
    try:
        with urllib.request.urlopen(req, timeout=60) as resp:
            return resp.status, resp.read(), resp.headers
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read(), exc.headers


@contextmanager
def _server(service):
    server = serve_http(service, port=0)
    try:
        yield server
    finally:
        server.stop()


class TestRemapKeys:
    def test_equal_requests_share_a_key(self):
        assert remap_request_key(_remap()) == remap_request_key(_remap())

    def test_degradation_context_is_in_the_key(self):
        key = remap_request_key(_remap())
        assert key != remap_request_key(
            _remap(deltas=(PlatformDelta.kill_gpu(2),)))
        assert key != remap_request_key(
            _remap(deltas=(PlatformDelta.kill_gpu(1),
                           PlatformDelta.throttle_link("gpu0", 0.5))))
        assert key != remap_request_key(
            _remap(old_assignment=(0, 0, 1, 1, 2, 2)))
        assert key != remap_request_key(_remap(alpha=0.5))

    def test_scheduling_fields_stay_out(self):
        tagged = _remap(base=_base(tag="urgent", priority=-5))
        assert remap_request_key(tagged) == remap_request_key(_remap())

    def test_delta_order_is_significant(self):
        # a restore before vs after a kill is a different machine
        a = _remap(deltas=(PlatformDelta.kill_gpu(1),
                           PlatformDelta.restore(),
                           PlatformDelta.kill_gpu(2)))
        b = _remap(deltas=(PlatformDelta.kill_gpu(2),
                           PlatformDelta.restore(),
                           PlatformDelta.kill_gpu(1)))
        assert remap_request_key(a) != remap_request_key(b)


class TestWireFormat:
    def test_json_round_trip(self):
        request = _remap(old_assignment=(0, 0, 1, 1, 2, 2), alpha=0.25)
        assert remap_from_json(remap_to_json(request)) == request

    def test_validation_requires_platform_and_deltas(self):
        with pytest.raises(ValueError):
            _remap(base=_base(platform=None, num_gpus=2)).validate()
        with pytest.raises(ValueError):
            _remap(deltas=()).validate()
        with pytest.raises(ValueError):
            remap_from_json({"remap": {"app": "Bitonic", "n": 8,
                                       "platform": "host-star"}})

    def test_impossible_deltas_rejected_at_validate(self):
        # killing all four host-star GPUs is an outage, not a remap
        request = _remap(deltas=tuple(
            PlatformDelta.kill_gpu(g) for g in range(4)
        ))
        with pytest.raises(ValueError):
            request.validate()

    def test_solve_remap_request_wire_fields(self):
        result = solve_remap_request(_remap())
        assert result["num_gpus"] == 3
        assert result["solver"].startswith(("repair", "portfolio"))
        assert len(result["assignment"]) == result["num_partitions"]
        assert result["baseline_tmax"] is not None
        # handing in the deployed assignment skips the baseline solve
        given = solve_remap_request(
            _remap(old_assignment=tuple([0] * result["num_partitions"]))
        )
        assert given["baseline_tmax"] is None


class TestServiceDedup:
    def test_duplicate_remaps_cost_one_solve(self):
        with MappingService(workers=2) as service:
            first = service.submit_remap(_remap())
            second = service.submit_remap(_remap())
            a, b = first.result(), second.result()
        assert a == b
        assert first.dedup is None
        assert second.dedup == "completed"

    def test_different_deltas_do_not_dedup(self):
        with MappingService(workers=2) as service:
            one = service.submit_remap(_remap())
            other = service.submit_remap(
                _remap(deltas=(PlatformDelta.kill_gpu(2),)))
            one.result(), other.result()
        assert one.key != other.key

    def test_draining_service_refuses_remaps(self):
        from repro.service import ServiceError

        service = MappingService(workers=1)
        service.shutdown(wait=True)
        with pytest.raises(ServiceError, match="draining"):
            service.submit_remap(_remap())


class TestHttpRemap:
    def test_body_is_byte_identical_to_stdio(self):
        line = json.dumps(remap_to_json(_remap()))
        out = io.StringIO()
        with MappingService() as stdio_service:
            failures = serve_stream(
                io.StringIO(line + "\n"), out, stdio_service)
        assert failures == 0
        expected = out.getvalue().encode()

        with MappingService() as service:
            with _server(service) as server:
                status, body, _headers = _post(
                    server.url + "/api/v1/remap",
                    remap_to_json(_remap()))
        assert status == 200
        assert body == expected
        payload = json.loads(body)
        assert payload["state"] == "done"
        assert payload["result"]["num_gpus"] == 3

    def test_bad_remap_is_400(self):
        with MappingService() as service:
            with _server(service) as server:
                status, body, _headers = _post(
                    server.url + "/api/v1/remap",
                    {"remap": {"app": "Bitonic", "n": 8,
                               "platform": "host-star"}})
        assert status == 400
        assert "deltas" in json.loads(body)["error"]

    def test_batch_stream_mixes_solves_and_remaps(self):
        lines = [
            json.dumps({"app": "Bitonic", "n": 8, "num_gpus": 2,
                        "budget": "instant"}),
            json.dumps(remap_to_json(_remap())),
        ]
        stream = "\n".join(lines) + "\n"
        out = io.StringIO()
        with MappingService() as stdio_service:
            serve_stream(io.StringIO(stream), out, stdio_service)
        expected = out.getvalue().encode()

        with MappingService() as service:
            with _server(service) as server:
                req = urllib.request.Request(
                    server.url + "/api/v1/batch", data=stream.encode(),
                    method="POST")
                with urllib.request.urlopen(req, timeout=60) as resp:
                    status, body = resp.status, resp.read()
        assert status == 200
        assert body == expected
