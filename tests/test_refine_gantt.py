"""Tests for mapping refinement and the Gantt renderer."""

import itertools

import pytest

from repro.apps.registry import build_app
from repro.flow import map_stream_graph
from repro.gpu.specs import LinkSpec
from repro.gpu.topology import default_topology
from repro.mapping.greedy import round_robin_mapping
from repro.mapping.problem import MappingProblem
from repro.mapping.refine import refine_mapping
from repro.runtime.gantt import gpu_rows_only, render_gantt
from repro.runtime.trace import TraceEvent, record_trace


def _problem(times, edges=None, gpus=2):
    return MappingProblem(
        times=list(times),
        edges=dict(edges or {}),
        host_io=[(0.0, 0.0)] * len(times),
        topology=default_topology(gpus, LinkSpec(6.0, 10_000.0)),
    )


class TestRefine:
    def test_improves_bad_assignment(self):
        p = _problem([10.0, 10.0, 10.0, 10.0], gpus=2)
        bad = [0, 0, 0, 0]
        refined = refine_mapping(p, bad)
        assert refined.tmax < p.tmax(bad)
        assert refined.tmax == pytest.approx(20.0)

    def test_reaches_optimum_on_balance_instance(self):
        times = [9.0, 7.0, 5.0, 3.0, 1.0]
        p = _problem(times, gpus=2)
        best = min(
            p.tmax(a) for a in itertools.product(range(2), repeat=5)
        )
        refined = refine_mapping(p, [0] * 5)
        assert refined.tmax == pytest.approx(best, rel=1e-6)

    def test_local_optima_exist_with_chatty_edges(self):
        """Documenting the limitation: pairwise-coupled partitions can
        trap first-improvement search — refinement never regresses, but
        it is not exact (that is the ILP's job)."""
        times = [9.0, 7.0, 5.0, 3.0, 1.0]
        edges = {(0, 1): 60_000.0, (2, 3): 90_000.0}
        p = _problem(times, edges, gpus=2)
        start = [0] * 5
        refined = refine_mapping(p, start)
        best = min(
            p.tmax(a) for a in itertools.product(range(2), repeat=5)
        )
        assert best <= refined.tmax <= p.tmax(start)

    def test_leaves_optimum_alone(self):
        p = _problem([10.0, 10.0], gpus=2)
        refined = refine_mapping(p, [0, 1])
        assert refined.tmax == pytest.approx(10.0)
        steps = dict(refined.solve_stats)["refine_steps"]
        assert steps == 0

    def test_swap_needed_case(self):
        # comm structure where only a swap (not a single move) helps:
        # two chatty pairs placed crosswise
        times = [10.0, 10.0, 10.0, 10.0]
        edges = {(0, 1): 600_000.0, (2, 3): 600_000.0}
        p = _problem(times, edges, gpus=2)
        crosswise = [0, 1, 1, 0]
        refined = refine_mapping(p, crosswise)
        assert refined.tmax <= p.tmax(crosswise)
        # pairs should end colocated
        assert refined.assignment[0] == refined.assignment[1]
        assert refined.assignment[2] == refined.assignment[3]

    def test_refines_real_mapping(self):
        graph = build_app("DCT", 14)
        flow = map_stream_graph(graph, num_gpus=4, mapper="roundrobin")
        from repro.mapping.problem import build_mapping_problem

        problem = build_mapping_problem(flow.pdg, 4)
        refined = refine_mapping(problem, flow.mapping.assignment)
        assert refined.tmax <= flow.mapping.tmax + 1e-6

    def test_length_validation(self):
        p = _problem([1.0, 2.0], gpus=2)
        with pytest.raises(ValueError):
            refine_mapping(p, [0])


class TestGantt:
    def _events(self):
        flow = map_stream_graph(build_app("FFT", 32), num_gpus=2)
        _, events = record_trace(
            flow.pdg, flow.mapping.assignment, default_topology(2),
            flow.engine.simulator, flow.measurements,
        )
        return events

    def test_renders_rows_per_resource(self):
        events = self._events()
        art = render_gantt(events, width=80)
        assert "gpu0" in art and "|" in art
        lines = art.splitlines()
        assert all(len(line) > 0 for line in lines)

    def test_kernel_cells_show_fragments(self):
        events = self._events()
        art = render_gantt(events, width=120, kinds=("kernel",))
        digits = set("0123456789")
        assert any(c in digits for line in art.splitlines() for c in line)

    def test_empty_events(self):
        assert render_gantt([]) == "(no events)"

    def test_horizon_clipping(self):
        events = self._events()
        horizon = max(e.end_ns for e in events) / 4
        art = render_gantt(events, width=40, until_ns=horizon)
        assert f"{horizon:.0f} ns" in art

    def test_gpu_rows_only_filter(self):
        events = self._events()
        kernels = gpu_rows_only(events)
        assert kernels and all(e.kind == "kernel" for e in kernels)

    def test_manual_events(self):
        events = [
            TraceEvent("kernel", "gpu0", "P0", 0.0, 50.0, 0),
            TraceEvent("kernel", "gpu0", "P0", 50.0, 100.0, 1),
            TraceEvent("transfer", "gpu0->sw1", "P0->P1", 50.0, 80.0, 0),
        ]
        art = render_gantt(events, width=10)
        assert "gpu0" in art and "#" in art
