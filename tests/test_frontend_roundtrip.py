"""Round-trip property tests: print(parse(...)) and parse(print(...))."""

import os

from hypothesis import given, settings, strategies as st

from repro.frontend.parser import parse_stream
from repro.frontend.printer import print_stream
from repro.graph.filters import FilterRole, FilterSpec
from repro.graph.flatten import flatten
from repro.graph.structure import (
    FeedbackLoop,
    Filt,
    Pipeline,
    SplitJoin,
    duplicate,
    join_roundrobin,
    roundrobin,
)

_name_counter = [0]


def _fresh(prefix: str) -> str:
    _name_counter[0] += 1
    return f"{prefix}{_name_counter[0]}"


@st.composite
def filters(draw, rate=None):
    rate = rate if rate is not None else draw(st.integers(1, 8))
    return Filt(
        FilterSpec(
            name=_fresh("f"),
            pop=rate,
            push=rate,
            peek=draw(st.sampled_from([0, rate + 2])),
            work=float(draw(st.integers(1, 500))),
            semantics=draw(st.sampled_from(["opaque", "identity", "scale"])),
            params=(2.0,) if draw(st.booleans()) else (),
        )
    )


@st.composite
def splitjoins(draw, rate):
    branches = draw(st.integers(1, 3))
    kind = draw(st.sampled_from(["dup", "rr"]))
    branch_nodes = tuple(draw(filters(rate=rate)) for _ in range(branches))
    split = (
        duplicate(rate, branches) if kind == "dup"
        else roundrobin(*([rate] * branches))
    )
    return SplitJoin(
        split, branch_nodes, join_roundrobin(*([rate] * branches)),
        name=_fresh("sj"),
    )


@st.composite
def structures(draw):
    rate = draw(st.integers(1, 6))
    items = [
        Filt(FilterSpec(name=_fresh("src"), pop=0, push=rate,
                        role=FilterRole.SOURCE, semantics="source"))
    ]
    for _ in range(draw(st.integers(1, 4))):
        if draw(st.booleans()):
            items.append(draw(filters(rate=rate)))
        else:
            sj = draw(splitjoins(rate=rate))
            items.append(sj)
            rate = sj.push_rate
    items.append(
        Filt(FilterSpec(name=_fresh("snk"), pop=rate, push=0,
                        role=FilterRole.SINK, semantics="sink"))
    )
    return Pipeline(tuple(items), name="Main")


def _canonical(node):
    """Structural fingerprint ignoring nothing that matters."""
    if isinstance(node, Filt):
        s = node.spec
        return ("filter", s.name, s.pop, s.push, s.peek, s.work, s.role,
                s.semantics, s.params, s.stateful)
    if isinstance(node, Pipeline):
        return ("pipeline", node.name,
                tuple(_canonical(c) for c in node.children))
    if isinstance(node, SplitJoin):
        return ("splitjoin", node.name, node.split.kind, node.split.weights,
                tuple(_canonical(b) for b in node.branches),
                node.join.weights)
    if isinstance(node, FeedbackLoop):
        return ("feedback", node.name, _canonical(node.body),
                _canonical(node.loopback), node.join.weights,
                node.split.weights, node.delay)
    raise TypeError(node)


@given(structures())
@settings(max_examples=40, deadline=None)
def test_print_parse_roundtrip(tree):
    text = print_stream(tree)
    reparsed = parse_stream(text)
    assert _canonical(reparsed) == _canonical(tree)


@given(structures())
@settings(max_examples=25, deadline=None)
def test_roundtripped_tree_flattens_identically(tree):
    original = flatten(tree, "orig")
    clone = flatten(parse_stream(print_stream(tree)), "orig")
    assert len(original.nodes) == len(clone.nodes)
    assert [n.firing for n in original.nodes] == [n.firing for n in clone.nodes]
    assert len(original.channels) == len(clone.channels)


def test_feedback_roundtrip():
    loop = FeedbackLoop(
        body=Filt(FilterSpec(name="body", pop=4, push=4, work=32.0)),
        loopback=Filt(FilterSpec(name="lb", pop=2, push=2, work=8.0)),
        join=join_roundrobin(2, 2),
        split=roundrobin(2, 2),
        delay=4,
        name="loop",
    )
    tree = Pipeline(
        (
            Filt(FilterSpec(name="src", pop=0, push=2,
                            role=FilterRole.SOURCE, semantics="source")),
            loop,
            Filt(FilterSpec(name="snk", pop=2, push=0,
                            role=FilterRole.SINK, semantics="sink")),
        ),
        name="Main",
    )
    assert _canonical(parse_stream(print_stream(tree))) == _canonical(tree)


def test_bundled_str_example_parses():
    path = os.path.join(
        os.path.dirname(__file__), "..", "examples", "adaptive_beamformer.str"
    )
    with open(path) as fh:
        tree = parse_stream(fh.read())
    text = print_stream(tree)
    assert _canonical(parse_stream(text)) == _canonical(tree)
