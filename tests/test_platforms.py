"""The heterogeneous platform layer: per-link specs, the named catalog,
and the solvers' use of both.

Four groups of guarantees:

* the named-platform registry is complete, self-consistent, and pinned
  byte-for-byte by the golden link tables under
  ``tests/golden/platforms/`` (accidental spec edits fail loudly);
* on randomized heterogeneous trees, the ``dtlist`` tree rule agrees
  with brute-force route enumeration, and ``comm_breakdown`` agrees
  with a hand-rolled reference evaluator that walks parent chains
  itself (latency charged only on used links, per-link bandwidth
  respected);
* the latent uniform-spec assumption is gone: two links with different
  specs are each costed under their own (the targeted regression of the
  issue — the old ``comm_breakdown`` read ``topology.link_spec`` once
  for all links);
* the optimal solvers *exploit* heterogeneity: on a machine with fast
  and slow links the MILP and branch-and-bound both find the brute-force
  optimum, which requires telling same-hop-count GPUs apart.
"""

import json
import random
from pathlib import Path

import pytest

from repro.flow import map_stream_graph, topology_key_parts
from repro.gpu.platforms import (
    PLATFORM_DESCRIPTIONS,
    PLATFORM_NAMES,
    PLATFORMS,
    build_platform,
    platform_link_table,
    platform_num_gpus,
)
from repro.gpu.specs import (
    C2070,
    M2090,
    PCIE_GEN2_X8,
    PCIE_GEN2_X16,
    PCIE_GEN3_X16,
    LinkSpec,
)
from repro.gpu.topology import HOST, GpuTopology, gpu_name
from repro.mapping.problem import Broadcast, MappingProblem
from repro.mapping.solver_bb import solve_branch_and_bound
from repro.mapping.solver_milp import solve_milp

GOLDEN_DIR = Path(__file__).parent / "golden" / "platforms"


# ----------------------------------------------------------------------
# randomized heterogeneous trees
# ----------------------------------------------------------------------
#: a palette of realistic per-direction specs (bandwidth B/ns, latency ns)
SPEC_PALETTE = (
    PCIE_GEN2_X16,
    PCIE_GEN2_X8,
    PCIE_GEN3_X16,
    LinkSpec(bandwidth_bytes_per_ns=1.0, latency_ns=50_000.0),
    LinkSpec(bandwidth_bytes_per_ns=24.0, latency_ns=2_000.0),
)


def random_hetero_topology(seed: int) -> GpuTopology:
    """A random host-rooted switch tree with random per-edge specs.

    Switch ``k``'s parent is a random earlier node (host or switch), so
    arbitrary depths and degenerate shapes (host-star, chains) all
    occur; each GPU hangs off a random node.  Roughly half the edges
    carry a non-default spec, and half the machines a mixed GPU set.
    """
    rng = random.Random(seed)
    num_gpus = rng.randint(2, 6)
    num_switches = rng.randint(0, 4)
    switches = [f"sw{k}" for k in range(1, num_switches + 1)]
    edges = []
    for idx, sw in enumerate(switches):
        parent = rng.choice([HOST] + switches[:idx])
        edges.append((sw, parent))
    for gpu in range(num_gpus):
        edges.append((gpu_name(gpu), rng.choice([HOST] + switches)))
    edge_specs = {
        child: rng.choice(SPEC_PALETTE)
        for child, _ in edges
        if rng.random() < 0.5
    }
    gpu_specs = None
    if rng.random() < 0.5:
        gpu_specs = [rng.choice((C2070, M2090)) for _ in range(num_gpus)]
    return GpuTopology(
        edges, num_gpus, link_spec=PCIE_GEN2_X16,
        edge_specs=edge_specs, gpu_specs=gpu_specs,
    )


def random_problem(topology: GpuTopology, seed: int) -> MappingProblem:
    """A random mapping problem over ``topology`` (edges, I/O, fan-outs)."""
    rng = random.Random(seed ^ 0x5EED)
    n = rng.randint(2, 6)
    edges = {}
    for i in range(n):
        for j in range(n):
            if i != j and rng.random() < 0.4:
                edges[(i, j)] = rng.uniform(64.0, 8192.0)
    broadcasts = []
    if n >= 3 and rng.random() < 0.5:
        src = rng.randrange(n)
        dests = tuple(sorted(set(rng.randrange(n) for _ in range(3))))
        broadcasts.append(
            Broadcast(src=src, nbytes=rng.uniform(64.0, 4096.0),
                      destinations=dests)
        )
    return MappingProblem(
        times=[rng.uniform(1e3, 1e5) for _ in range(n)],
        edges=edges,
        host_io=[
            (rng.choice((0.0, rng.uniform(32.0, 2048.0))),
             rng.choice((0.0, rng.uniform(32.0, 2048.0))))
            for _ in range(n)
        ],
        topology=topology,
        peer_to_peer=rng.random() < 0.7,
        broadcasts=broadcasts,
    )


def reference_route(topology: GpuTopology, src: str, dst: str):
    """Route src -> dst recomputed from the raw tree edges alone.

    Walks parent chains from an independently-rebuilt parent map — no
    :meth:`GpuTopology.route` machinery — so the production routing has
    a genuinely separate implementation to disagree with.
    """
    parent = dict(topology.tree_edges())
    by_edge = {}
    for link in topology.links:
        by_edge[(link.child, link.up)] = link.link_id

    def chain(node):
        out = [node]
        while out[-1] != HOST:
            out.append(parent[out[-1]])
        return out

    up_chain, down_chain = chain(src), chain(dst)
    common = set(up_chain) & set(down_chain)
    lca = next(node for node in up_chain if node in common)
    ups = [
        by_edge[(node, True)] for node in up_chain[: up_chain.index(lca)]
    ]
    downs = [
        by_edge[(node, False)] for node in down_chain[: down_chain.index(lca)]
    ]
    return ups + list(reversed(downs))


def reference_comm_times(problem: MappingProblem, assignment):
    """Hand-rolled Eq. III.3/III.7 evaluator with per-link specs.

    Accumulates bytes link by link from first principles, then charges
    each *used* link its own ``Lat_l + D_l / BW_l``; unused links cost
    nothing (latency only on used links).
    """
    topo = problem.topology

    def route(src_gpu, dst_gpu):
        if src_gpu == dst_gpu:
            return []
        if problem.peer_to_peer:
            return reference_route(topo, gpu_name(src_gpu), gpu_name(dst_gpu))
        return reference_route(
            topo, gpu_name(src_gpu), HOST
        ) + reference_route(topo, HOST, gpu_name(dst_gpu))

    loads = [0.0] * topo.num_links
    for (i, j), nbytes in problem.edges.items():
        for link in route(assignment[i], assignment[j]):
            loads[link] += nbytes
    for group in problem.broadcasts:
        src = assignment[group.src]
        for dst in sorted({assignment[j] for j in group.destinations} - {src}):
            for link in route(src, dst):
                loads[link] += group.nbytes
    if problem.include_host_io:
        for pid, (inp, out) in enumerate(problem.host_io):
            if inp:
                for link in reference_route(
                    topo, HOST, gpu_name(assignment[pid])
                ):
                    loads[link] += inp
            if out:
                for link in reference_route(
                    topo, gpu_name(assignment[pid]), HOST
                ):
                    loads[link] += out
    return [
        (
            topo.links[l].spec.latency_ns
            + loads[l] / topo.links[l].spec.bandwidth_bytes_per_ns
        ) if loads[l] else 0.0
        for l in range(topo.num_links)
    ]


class TestRandomHeteroTrees:
    @pytest.mark.parametrize("seed", range(40))
    def test_dtlist_rule_matches_route_enumeration(self, seed):
        topo = random_hetero_topology(seed)
        for link in topo.links:
            assert sorted(topo.dtlist(link.link_id)) == sorted(
                topo.dtlist_tree_rule(link.link_id)
            ), f"link {link.name} (seed {seed})"

    @pytest.mark.parametrize("seed", range(40))
    def test_routes_match_reference(self, seed):
        topo = random_hetero_topology(seed)
        for src in range(topo.num_gpus):
            for dst in range(topo.num_gpus):
                if src != dst:
                    assert list(topo.route(src, dst)) == reference_route(
                        topo, gpu_name(src), gpu_name(dst)
                    )
            assert list(topo.route_to_host(src)) == reference_route(
                topo, gpu_name(src), HOST
            )
            assert list(topo.route_from_host(src)) == reference_route(
                topo, HOST, gpu_name(src)
            )

    @pytest.mark.parametrize("seed", range(40))
    def test_comm_breakdown_matches_reference(self, seed):
        topo = random_hetero_topology(seed)
        problem = random_problem(topo, seed)
        rng = random.Random(seed ^ 0xA551)
        for _ in range(5):
            assignment = [
                rng.randrange(topo.num_gpus)
                for _ in range(problem.num_partitions)
            ]
            got = problem.comm_breakdown(assignment)
            want = reference_comm_times(problem, assignment)
            assert list(got.link_times) == pytest.approx(want)

    @pytest.mark.parametrize("seed", range(10))
    def test_latency_charged_only_on_used_links(self, seed):
        """All partitions on one GPU with no host I/O: no link may cost
        anything, whatever its latency."""
        topo = random_hetero_topology(seed)
        problem = random_problem(topo, seed)
        problem.include_host_io = False
        breakdown = problem.comm_breakdown([0] * problem.num_partitions)
        assert breakdown.bottleneck_time == 0.0
        assert set(breakdown.link_times) == {0.0}


# ----------------------------------------------------------------------
# the targeted uniform-spec regression (issue satellite)
# ----------------------------------------------------------------------
class TestPerLinkSpecRegression:
    """``comm_breakdown`` used to read ``topology.link_spec`` once for
    every link; these assertions fail on that code."""

    FAST = LinkSpec(bandwidth_bytes_per_ns=6.0, latency_ns=10_000.0)
    SLOW = LinkSpec(bandwidth_bytes_per_ns=1.0, latency_ns=50_000.0)

    def _flat_problem(self):
        topo = GpuTopology(
            [(gpu_name(0), HOST), (gpu_name(1), HOST)],
            num_gpus=2, link_spec=self.FAST,
            edge_specs={gpu_name(1): self.SLOW},
        )
        return MappingProblem(
            times=[1.0, 1.0],
            edges={},
            host_io=[(0.0, 0.0), (0.0, 600.0)],
            topology=topo,
        )

    def test_two_links_with_different_latency(self):
        """Traffic on gpu1's uplink must pay gpu1's 50 us latency and
        1 B/ns bandwidth — not the default link's 10 us / 6 B/ns."""
        problem = self._flat_problem()
        breakdown = problem.comm_breakdown([0, 1])
        [uplink] = [
            l.link_id for l in problem.topology.links
            if l.child == gpu_name(1) and l.up
        ]
        assert breakdown.link_bytes[uplink] == 600.0
        assert breakdown.link_times[uplink] == pytest.approx(
            self.SLOW.latency_ns + 600.0 / self.SLOW.bandwidth_bytes_per_ns
        )
        assert problem.tmax([0, 1]) == pytest.approx(50_600.0)

    def test_default_spec_still_governs_unoverridden_links(self):
        problem = self._flat_problem()
        # host_io of partition 1 placed on gpu0: fast uplink this time
        breakdown = problem.comm_breakdown([0, 0])
        [uplink] = [
            l.link_id for l in problem.topology.links
            if l.child == gpu_name(0) and l.up
        ]
        assert breakdown.link_times[uplink] == pytest.approx(
            self.FAST.latency_ns + 600.0 / self.FAST.bandwidth_bytes_per_ns
        )

    def test_route_transfer_cost_uses_bottleneck(self):
        """Per-route costing: latency sums over hops, bandwidth is the
        route's bottleneck link."""
        topo = build_platform("two-island")
        route = topo.route(0, 2)  # crosses both gen2-x8 island uplinks
        nbytes = 3_000.0
        want_lat = sum(topo.links[l].spec.latency_ns for l in route)
        assert topo.route_transfer_ns(route, nbytes) == pytest.approx(
            want_lat + nbytes / PCIE_GEN2_X8.bandwidth_bytes_per_ns
        )


# ----------------------------------------------------------------------
# optimal solvers must exploit per-link heterogeneity
# ----------------------------------------------------------------------
class TestSolversSeeHeterogeneity:
    def _fast_slow_star(self):
        """4 GPUs on the host; gpu0/gpu1 behind slow links, gpu2/gpu3
        fast.  Two communicating equal partitions: the only optimal
        splits use the fast pair, and every GPU has the *same* hop
        counts — telling them apart requires the per-link specs."""
        slow = LinkSpec(bandwidth_bytes_per_ns=0.5, latency_ns=100_000.0)
        topo = GpuTopology(
            [(gpu_name(g), HOST) for g in range(4)],
            num_gpus=4,
            link_spec=LinkSpec(bandwidth_bytes_per_ns=12.0, latency_ns=1_000.0),
            edge_specs={gpu_name(0): slow, gpu_name(1): slow},
        )
        return MappingProblem(
            times=[50_000.0, 50_000.0],
            edges={(0, 1): 12_000.0},
            host_io=[(0.0, 0.0), (0.0, 0.0)],
            topology=topo,
            include_host_io=False,
        )

    def _brute_force_optimum(self, problem):
        best = None
        for a in range(problem.num_gpus):
            for b in range(problem.num_gpus):
                tmax = problem.tmax([a, b])
                if best is None or tmax < best:
                    best = tmax
        return best

    def test_milp_finds_fast_pair(self):
        problem = self._fast_slow_star()
        want = self._brute_force_optimum(problem)
        assert want == pytest.approx(50_000.0)  # split across gpu2/gpu3
        result = solve_milp(problem)
        assert result.optimal
        assert result.tmax == pytest.approx(want)
        assert set(result.assignment) <= {2, 3}
        assert problem.tmax(result.assignment) == pytest.approx(result.tmax)

    def test_branch_and_bound_agrees(self):
        problem = self._fast_slow_star()
        result = solve_branch_and_bound(problem)
        assert result.optimal
        assert result.tmax == pytest.approx(self._brute_force_optimum(problem))
        assert set(result.assignment) <= {2, 3}

    def test_milp_charges_slow_link_when_forced_onto_it(self):
        """With the fast pair forbidden (2 GPUs only), the MILP's
        objective must reflect the slow link's own Lat/BW."""
        slow = LinkSpec(bandwidth_bytes_per_ns=0.5, latency_ns=100_000.0)
        topo = GpuTopology(
            [(gpu_name(0), HOST), (gpu_name(1), HOST)],
            num_gpus=2,
            link_spec=LinkSpec(bandwidth_bytes_per_ns=12.0, latency_ns=1_000.0),
            edge_specs={gpu_name(1): slow},
        )
        problem = MappingProblem(
            times=[200_000.0, 200_000.0],
            edges={(0, 1): 12_000.0},
            host_io=[(0.0, 0.0), (0.0, 0.0)],
            topology=topo,
            include_host_io=False,
        )
        result = solve_milp(problem)
        assert result.optimal
        # splitting pays the slow uplink/downlink (100 us + 24 us
        # bandwidth term = 124 us... twice the latency on the way down?
        # no: route gpu0->gpu1 = gpu0 up (fast) + gpu1 down (slow));
        # stacking pays 400 us of compute: splitting wins, costed on the
        # slow link's spec
        split = problem.tmax([0, 1])
        assert result.tmax == pytest.approx(min(split, 400_000.0))
        assert problem.tmax(result.assignment) == pytest.approx(result.tmax)


# ----------------------------------------------------------------------
# heterogeneous GPUs (per-leaf specs -> slowdown factors)
# ----------------------------------------------------------------------
class TestGpuSlowdowns:
    def test_mixed_box_derives_c2070_slowdown(self):
        topo = build_platform("mixed-box")
        slow = topo.gpu_slowdowns()
        assert slow[0] == slow[1] == 1.0
        # the paper's ~29% compute-power gap, as a slowdown factor
        assert slow[2] == slow[3] == pytest.approx(1.29, abs=0.01)

    def test_homogeneous_platform_is_all_ones(self):
        assert build_platform("gen3-balanced").gpu_slowdowns() == [1.0] * 4

    def test_specless_topology_returns_none(self):
        topo = GpuTopology([(gpu_name(0), HOST)], num_gpus=1)
        assert topo.gpu_slowdowns() is None

    def test_mismatched_gpu_specs_rejected(self):
        with pytest.raises(ValueError):
            GpuTopology(
                [(gpu_name(0), HOST), (gpu_name(1), HOST)],
                num_gpus=2, gpu_specs=[M2090],
            )

    def test_problem_inherits_platform_slowdowns(self):
        from repro.apps import build_app
        from repro.flow import partition_stage, pdg_stage, profile_stage
        from repro.mapping.problem import build_mapping_problem

        graph = build_app("Bitonic", 8)
        engine = profile_stage(graph)
        partitions, partitioning = partition_stage(graph, engine)
        pdg = pdg_stage(graph, partitions, engine, partitioning=partitioning)
        topo = build_platform("mixed-box")
        problem = build_mapping_problem(pdg, 4, topology=topo)
        assert problem.gpu_slowdown == topo.gpu_slowdowns()
        # partition 0 is ~29% slower on a C2070 leaf than on an M2090 one
        assert problem.time_on(0, 2) == pytest.approx(
            problem.time_on(0, 0) * topo.gpu_slowdowns()[2]
        )


# ----------------------------------------------------------------------
# the named-platform registry and its golden link tables
# ----------------------------------------------------------------------
class TestRegistry:
    def test_names_are_sorted_and_complete(self):
        assert list(PLATFORM_NAMES) == sorted(PLATFORMS)
        assert set(PLATFORM_DESCRIPTIONS) == set(PLATFORMS)

    @pytest.mark.parametrize("name", PLATFORM_NAMES)
    def test_every_platform_builds(self, name):
        topo = build_platform(name)
        assert topo.num_gpus == platform_num_gpus(name)
        assert topo.num_gpus >= 1 and topo.num_links >= 2
        # every platform carries explicit per-leaf GPU specs
        assert topo.gpu_specs is not None
        assert len(topo.gpu_specs) == topo.num_gpus

    def test_unknown_name_rejected_with_catalog(self):
        with pytest.raises(ValueError, match="two-island"):
            build_platform("warehouse-scale")

    def test_builds_are_independent_instances(self):
        assert build_platform("host-star") is not build_platform("host-star")

    def test_catalog_covers_the_issue_scenarios(self):
        """The catalog spans the scenario space the issue names: the
        paper's machine, a uniform upgrade, hetero links, hetero GPUs, a
        degenerate star, and a deep 8-GPU tree."""
        assert not build_platform("two-island").uniform_links
        assert not build_platform("deep-tree-8").uniform_links
        assert build_platform("deep-tree-8").num_gpus == 8
        assert build_platform("host-star").num_links == 8  # no switches
        slow = build_platform("mixed-box").gpu_slowdowns()
        assert len(set(slow)) == 2  # two device generations
        assert build_platform("c2070-quad").gpu_specs[0] == C2070

    @pytest.mark.parametrize("name", PLATFORM_NAMES)
    def test_golden_link_table(self, name):
        """Byte-for-byte pin of each catalog entry.  If a platform spec
        legitimately changes, regenerate with::

            PYTHONPATH=src python -c "from repro.gpu.platforms import *; \\
                import json, pathlib; \\
                [pathlib.Path('tests/golden/platforms', n + '.json') \\
                 .write_text(json.dumps(platform_link_table(n), indent=2, \\
                 sort_keys=True) + '\\n') for n in PLATFORM_NAMES]"
        """
        golden = json.loads((GOLDEN_DIR / f"{name}.json").read_text())
        assert platform_link_table(name) == golden

    def test_no_stale_golden_files(self):
        on_disk = {path.stem for path in GOLDEN_DIR.glob("*.json")}
        assert on_disk == set(PLATFORM_NAMES)

    def test_two_island_crossing_is_the_slow_fabric(self):
        topo = build_platform("two-island")
        cross = topo.route(0, 2)
        inside = topo.route(0, 1)
        assert min(
            topo.links[l].spec.bandwidth_bytes_per_ns for l in cross
        ) == PCIE_GEN2_X8.bandwidth_bytes_per_ns
        assert all(
            topo.links[l].spec == PCIE_GEN3_X16 for l in inside
        )


# ----------------------------------------------------------------------
# platform identity in cache keys and the flow facade
# ----------------------------------------------------------------------
class TestPlatformIdentity:
    def test_every_catalog_platform_keys_distinctly(self):
        keys = {
            json.dumps(
                topology_key_parts(build_platform(name)),
                sort_keys=True, default=str,
            )
            for name in PLATFORM_NAMES
        }
        assert len(keys) == len(PLATFORM_NAMES)

    def test_uniform_topology_keeps_compact_key(self):
        """Backward compatibility: the reference trees' key parts gained
        no new fields, so pre-existing cache entries stay valid."""
        from repro.gpu.topology import default_topology

        parts = topology_key_parts(default_topology(4))
        assert set(parts) == {"parents", "num_gpus", "link_spec"}

    def test_link_spec_change_changes_key(self):
        base = build_platform("gen3-balanced")
        tweaked = GpuTopology(
            base.tree_edges(), base.num_gpus,
            link_spec=PCIE_GEN3_X16,
            edge_specs={"sw2": PCIE_GEN2_X8},
            gpu_specs=list(base.gpu_specs),
        )
        assert topology_key_parts(base) != topology_key_parts(tweaked)

    def test_flow_platform_fixes_gpu_count(self):
        from repro.apps import build_app

        result = map_stream_graph(
            build_app("Bitonic", 8), num_gpus=1, platform="host-star"
        )
        assert result.num_gpus == 4
        assert len(result.mapping.gpu_times) == 4
        assert result.throughput > 0

    def test_flow_rejects_platform_plus_topology(self):
        from repro.apps import build_app
        from repro.gpu.topology import default_topology

        with pytest.raises(ValueError, match="not both"):
            map_stream_graph(
                build_app("Bitonic", 8),
                platform="host-star",
                topology=default_topology(2),
            )
