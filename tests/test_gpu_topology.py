"""Tests for GPU specs and the PCIe tree topology (Figure 3.3)."""

import pytest

from repro.gpu.specs import C2070, M2090, GpuSpec, LinkSpec, PCIE_GEN2_X16
from repro.gpu.topology import HOST, GpuTopology, default_topology, gpu_name


class TestSpecs:
    def test_m2090_outscales_c2070(self):
        ratio = M2090.peak_throughput_proxy / C2070.peak_throughput_proxy
        assert ratio == pytest.approx(1.29, abs=0.02)  # the paper's 29%

    def test_bandwidth_gap_matches_paper(self):
        ratio = M2090.mem_bandwidth_gbps / C2070.mem_bandwidth_gbps
        assert ratio == pytest.approx(1.23, abs=0.01)  # the paper's 23%

    def test_same_shared_memory(self):
        assert M2090.shared_mem_bytes == C2070.shared_mem_bytes == 48 * 1024

    def test_invalid_spec_rejected(self):
        with pytest.raises(ValueError):
            GpuSpec(name="bad", sm_count=0, clock_ghz=1.0)
        with pytest.raises(ValueError):
            GpuSpec(name="bad", sm_count=4, clock_ghz=1.0, max_threads_per_block=100)

    def test_link_transfer_cost(self):
        link = LinkSpec(bandwidth_bytes_per_ns=2.0, latency_ns=100.0)
        assert link.transfer_ns(200) == pytest.approx(200.0)

    def test_default_link_sane(self):
        assert PCIE_GEN2_X16.transfer_ns(0) == PCIE_GEN2_X16.latency_ns


class TestDefaultTopology:
    def test_four_gpu_link_count(self):
        topo = default_topology(4)
        # edges: sw1-host, sw2-sw1, sw3-sw1, 4 gpu edges = 7 edges = 14 links
        assert topo.num_links == 14

    def test_one_gpu(self):
        topo = default_topology(1)
        assert topo.route_to_host(0)  # uses sw1 uplink chain
        assert topo.route(0, 0) == ()

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            default_topology(0)
        with pytest.raises(ValueError):
            default_topology(5)

    def test_sibling_route_is_short(self):
        topo = default_topology(4)
        # gpu0 and gpu1 share sw2: 2 links (up to sw2, down to gpu1)
        assert len(topo.route(0, 1)) == 2

    def test_cross_switch_route_is_long(self):
        topo = default_topology(4)
        # gpu1 -> gpu2 crosses sw2 -> sw1 -> sw3: 4 links, as in the paper
        assert len(topo.route(1, 2)) == 4

    def test_route_via_host_longer_than_p2p(self):
        topo = default_topology(4)
        assert len(topo.route_via_host(0, 1)) > len(topo.route(0, 1))

    def test_route_links_are_directed_correctly(self):
        topo = default_topology(4)
        links = [topo.links[l] for l in topo.route(0, 3)]
        assert links[0].up and not links[-1].up

    def test_host_routes_meet_at_root(self):
        topo = default_topology(2)
        up = topo.route_to_host(0)
        down = topo.route_from_host(0)
        assert all(topo.links[l].up for l in up)
        assert all(not topo.links[l].up for l in down)


class TestDtlist:
    @pytest.mark.parametrize("gpus", [1, 2, 3, 4])
    def test_tree_rule_matches_enumeration(self, gpus):
        topo = default_topology(gpus)
        for link in topo.links:
            assert sorted(topo.dtlist(link.link_id)) == sorted(
                topo.dtlist_tree_rule(link.link_id)
            )

    def test_paper_example_sw2_uplink(self):
        """The link SW2->SW1 carries exactly (1,3),(1,4),(2,3),(2,4)
        in the paper's 1-based numbering — (0,2),(0,3),(1,2),(1,3) here."""
        topo = default_topology(4)
        uplink = next(
            l for l in topo.links if l.child == "sw2" and l.parent == "sw1" and l.up
        )
        assert sorted(topo.dtlist(uplink.link_id)) == [(0, 2), (0, 3), (1, 2), (1, 3)]

    def test_gpu_uplink_carries_all_outgoing(self):
        topo = default_topology(4)
        uplink = next(
            l for l in topo.links if l.child == gpu_name(0) and l.up
        )
        assert sorted(topo.dtlist(uplink.link_id)) == [(0, 1), (0, 2), (0, 3)]

    def test_host_dtlist(self):
        topo = default_topology(4)
        sw1_up = next(l for l in topo.links if l.child == "sw1" and l.up)
        loads = topo.host_dtlist(sw1_up.link_id)
        assert loads["to_host"] == [0, 1, 2, 3]
        assert loads["from_host"] == []


class TestCustomTopology:
    def test_missing_gpu_rejected(self):
        with pytest.raises(ValueError):
            GpuTopology([("sw1", HOST), ("gpu0", "sw1")], num_gpus=2)

    def test_orphan_rejected(self):
        with pytest.raises(ValueError):
            GpuTopology([("gpu0", "nowhere")], num_gpus=1)

    def test_flat_two_gpu(self):
        topo = GpuTopology([("gpu0", HOST), ("gpu1", HOST)], num_gpus=2)
        assert len(topo.route(0, 1)) == 2

    def test_transfer_ns_pipeline_latency(self):
        topo = default_topology(4)
        single = topo.transfer_ns(1024, hops=1)
        quad = topo.transfer_ns(1024, hops=4)
        assert quad > single
        # bandwidth term is paid once; latency once per hop
        lat = topo.link_spec.latency_ns
        assert quad - single == pytest.approx(3 * lat)

    def test_zero_hops_free(self):
        assert default_topology(2).transfer_ns(4096, hops=0) == 0.0
