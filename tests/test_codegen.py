"""Tests for the CUDA code generator."""

import pytest

from repro.apps.registry import build_app
from repro.flow import map_stream_graph
from repro.gpu.codegen import (
    generate_host_driver,
    generate_kernel,
    generate_program,
)
from repro.gpu.kernel import KernelConfig
from repro.graph.builder import linear_pipeline_graph
from repro.perf.engine import PerformanceEstimationEngine


def _flow(app="FFT", n=16, gpus=2):
    graph = build_app(app, n)
    return map_stream_graph(graph, num_gpus=gpus)


class TestKernelGeneration:
    def test_kernel_contains_parameters(self):
        g = linear_pipeline_graph("cg", stages=3, rate=16, work=50.0)
        members = frozenset(n.node_id for n in g.nodes)
        cfg = KernelConfig(2, 4, 64)
        kernel = generate_kernel(g, members, cfg, 0)
        assert "__global__ void partition_0_kernel" in kernel.source
        assert "const int F = 64;" in kernel.source
        assert "const int S = 2;" in kernel.source
        assert "const int W = 4;" in kernel.source

    def test_kernel_walks_filters_in_topo_order(self):
        g = linear_pipeline_graph("cg", stages=3, rate=16)
        members = frozenset(n.node_id for n in g.nodes)
        kernel = generate_kernel(g, members, KernelConfig(1, 1, 32), 0)
        src_pos = kernel.source.find("run_src")
        s0 = kernel.source.find("run_stage0")
        s2 = kernel.source.find("run_stage2")
        assert -1 < src_pos < s0 < s2

    def test_kernel_has_barriers_and_swap(self):
        g = linear_pipeline_graph("cg", stages=2, rate=8)
        members = frozenset(n.node_id for n in g.nodes)
        kernel = generate_kernel(g, members, KernelConfig(1, 1, 32), 0)
        assert kernel.source.count("__syncthreads()") >= 3
        assert "buf = 1 - buf" in kernel.source

    def test_smem_declared_within_budget(self):
        flow = _flow()
        for idx, members in enumerate(flow.partitions):
            est = flow.engine.estimate(members)
            kernel = generate_kernel(flow.graph, members, est.config, idx)
            assert kernel.smem_bytes <= 48 * 1024 or kernel.spilled_channels


class TestProgramGeneration:
    def test_program_emits_one_kernel_per_partition(self):
        flow = _flow()
        configs = [flow.engine.estimate(m).config for m in flow.partitions]
        program = generate_program(
            flow.graph, flow.partitions, configs, flow.mapping.assignment
        )
        assert len(program.kernels) == flow.num_partitions
        assert "run_stream_graph" in program.host_source

    def test_host_driver_pipelines_fragments(self):
        flow = _flow(gpus=2)
        configs = [flow.engine.estimate(m).config for m in flow.partitions]
        host = generate_host_driver(
            flow.graph, flow.partitions, flow.mapping.assignment,
            generate_program(
                flow.graph, flow.partitions, configs, flow.mapping.assignment
            ).kernels,
        )
        assert "cudaStreamCreate" in host
        assert "for (int frag = 0; frag < NUM_FRAGMENTS; ++frag)" in host

    def test_p2p_vs_host_staging(self):
        flow = _flow(gpus=2)
        configs = [flow.engine.estimate(m).config for m in flow.partitions]
        if len(set(flow.mapping.assignment)) < 2:
            pytest.skip("mapping used one GPU")
        p2p = generate_program(
            flow.graph, flow.partitions, configs, flow.mapping.assignment,
            peer_to_peer=True,
        )
        hosted = generate_program(
            flow.graph, flow.partitions, configs, flow.mapping.assignment,
            peer_to_peer=False,
        )
        assert "cudaDeviceEnablePeerAccess" in p2p.host_source
        assert "cudaDeviceEnablePeerAccess" not in hosted.host_source

    def test_misaligned_inputs_rejected(self):
        flow = _flow()
        configs = [flow.engine.estimate(m).config for m in flow.partitions]
        with pytest.raises(ValueError):
            generate_program(
                flow.graph, flow.partitions, configs[:-1],
                flow.mapping.assignment,
            )

    def test_full_source_concatenates(self):
        flow = _flow()
        configs = [flow.engine.estimate(m).config for m in flow.partitions]
        program = generate_program(
            flow.graph, flow.partitions, configs, flow.mapping.assignment
        )
        text = program.full_source()
        for kernel in program.kernels:
            assert kernel.name in text
