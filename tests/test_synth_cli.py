"""CLI tests for ``repro synth``: golden-file determinism (same seed =>
byte-identical ``.str``/JSON across runs *and* across history), corpus
modes, and error paths."""

import os

import pytest

from repro import cli

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden", "synth")


def _golden(name: str) -> bytes:
    with open(os.path.join(GOLDEN_DIR, name), "rb") as fh:
        return fh.read()


def _run_synth(tmp_path, *args: str) -> dict:
    """Run ``repro synth`` in-process, returning written files' bytes."""
    rc = cli.main(["synth", *args])
    assert rc == 0
    out = {}
    for path in tmp_path.iterdir():
        out[path.name] = path.read_bytes()
    return out


class TestGoldenFiles:
    """Same seed => byte-identical output, pinned against checked-in
    goldens so generator drift cannot slip through unnoticed."""

    @pytest.mark.parametrize(
        "family, seed, stem",
        [("splitjoin", "7", "splitjoin-s7"), ("pipeline", "3", "pipeline-s3")],
    )
    def test_str_and_json_match_goldens(self, tmp_path, family, seed, stem):
        files = _run_synth(
            tmp_path, "--family", family, "--seed", seed,
            "--out-str", str(tmp_path / "out.str"),
            "--out-json", str(tmp_path / "out.json"),
        )
        assert files["out.str"] == _golden(f"{stem}.str")
        assert files["out.json"] == _golden(f"{stem}.json")

    def test_dag_json_matches_golden(self, tmp_path):
        files = _run_synth(
            tmp_path, "--family", "dag", "--seed", "5",
            "--out-json", str(tmp_path / "out.json"),
        )
        assert files["out.json"] == _golden("dag-s5.json")

    def test_two_invocations_byte_identical(self, tmp_path):
        runs = {}
        for run in ("a", "b"):
            sub = tmp_path / run
            sub.mkdir()
            runs[run] = _run_synth(
                sub, "--family", "butterfly", "--seed", "9",
                "--out-str", str(sub / "out.str"),
                "--out-json", str(sub / "out.json"),
            )
        assert runs["a"] == runs["b"]
        assert set(runs["a"]) == {"out.str", "out.json"}

    def test_pinned_corpus_fingerprints_match_golden(self):
        from repro.synth import generate_corpus

        lines = [
            f"{g.spec.instance_name} {g.fingerprint}\n"
            for g in generate_corpus()
        ]
        assert "".join(lines).encode() == _golden("pinned_fingerprints.txt")

    def test_emitted_str_recompiles_to_same_fingerprint(self, tmp_path):
        """The exported .str is not just stable — it is a faithful
        program: compiling it reproduces the generated graph."""
        from repro.frontend import compile_stream
        from repro.graph.fingerprint import graph_fingerprint
        from repro.synth import generate

        instance = generate("splitjoin", 7)
        graph = compile_stream(
            _golden("splitjoin-s7.str").decode(),
            name=instance.spec.instance_name,
        )
        assert graph_fingerprint(graph) == instance.fingerprint


class TestCliModes:
    def test_summary_prints_fingerprint(self, capsys):
        assert cli.main(["synth", "--family", "feedback", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "fingerprint" in out
        assert "synth-feedback-s2" in out

    def test_show_json(self, capsys):
        assert cli.main(
            ["synth", "--family", "dag", "--seed", "1", "--show", "json"]
        ) == 0
        out = capsys.readouterr().out
        assert '"channels"' in out

    def test_list_families(self, capsys):
        assert cli.main(["synth", "--list-families"]) == 0
        out = capsys.readouterr().out
        for family in ("pipeline", "splitjoin", "butterfly", "feedback",
                       "random", "dag"):
            assert family in out

    def test_check_mode_passes(self, capsys):
        assert cli.main(["synth", "--check", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "3 instances" in out and "0 violations" in out

    def test_check_honors_explicit_corpus(self, capsys):
        assert cli.main(
            ["synth", "--check", "--corpus", "pinned", "--quiet"]
        ) == 0
        assert "30 instances" in capsys.readouterr().out

    def test_single_instance_diffcheck(self, capsys):
        rc = cli.main([
            "synth", "--family", "splitjoin", "--seed", "1", "--diffcheck",
        ])
        assert rc == 0
        assert "ok" in capsys.readouterr().out

    def test_corpus_listing(self, capsys):
        assert cli.main(["synth", "--corpus", "tiny"]) == 0
        out = capsys.readouterr().out
        assert out.count("fingerprint") == 3

    def test_param_override_changes_output(self, capsys):
        assert cli.main(
            ["synth", "--family", "pipeline", "--seed", "1",
             "--param", "depth=12"]
        ) == 0
        first = capsys.readouterr().out
        assert cli.main(["synth", "--family", "pipeline", "--seed", "1"]) == 0
        second = capsys.readouterr().out
        assert first != second


class TestCliErrors:
    def test_dag_str_export_is_an_error(self, tmp_path):
        with pytest.raises(SystemExit):
            cli.main([
                "synth", "--family", "dag", "--seed", "1",
                "--out-str", str(tmp_path / "x.str"),
            ])

    def test_unknown_family(self):
        with pytest.raises(SystemExit):
            cli.main(["synth", "--family", "nosuch", "--seed", "1"])

    def test_bad_param(self):
        with pytest.raises(SystemExit):
            cli.main(["synth", "--family", "dag", "--seed", "1",
                      "--param", "layers=lots"])

    def test_missing_family(self):
        with pytest.raises(SystemExit):
            cli.main(["synth"])

    def test_corpus_modes_reject_instance_flags(self, tmp_path):
        """--check/--corpus must not silently ignore --family/--out-*."""
        with pytest.raises(SystemExit):
            cli.main(["synth", "--corpus", "tiny", "--family", "dag"])
        with pytest.raises(SystemExit):
            cli.main(["synth", "--check",
                      "--out-json", str(tmp_path / "x.json")])


class TestSweepCliIntegration:
    def test_sweep_accepts_synth_cases(self, capsys):
        rc = cli.main([
            "sweep", "--case", "synth:pipeline:3", "--gpus", "1",
            "--quiet",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "synth:pipeline" in out

    def test_sweep_rejects_unknown_synth_family(self):
        with pytest.raises(SystemExit):
            cli.main(["sweep", "--case", "synth:nosuch:3", "--quiet"])


class TestPlatformFlag:
    def test_diffcheck_against_named_platform(self, capsys):
        rc = cli.main([
            "synth", "--corpus", "tiny", "--diffcheck",
            "--platform", "host-star",
        ])
        assert rc == 0
        captured = capsys.readouterr()
        assert "@host-star" in captured.err  # per-instance progress
        assert "0 violations" in captured.out

    def test_single_instance_platform_diffcheck(self, capsys):
        rc = cli.main([
            "synth", "--family", "pipeline", "--seed", "1",
            "--diffcheck", "--platform", "two-island",
        ])
        assert rc == 0
        assert "@two-island" in capsys.readouterr().out

    def test_unknown_platform_rejected(self):
        with pytest.raises(SystemExit):
            cli.main([
                "synth", "--family", "pipeline", "--seed", "1",
                "--diffcheck", "--platform", "nebula",
            ])

    def test_platform_conflicts_with_gpus(self):
        """Same contract as `repro` and `repro sweep`: --platform fixes
        the machine, an explicit --gpus is a hard error."""
        with pytest.raises(SystemExit):
            cli.main([
                "synth", "--corpus", "tiny", "--diffcheck",
                "--gpus", "2", "--platform", "deep-tree-8",
            ])
