"""Tests for hierarchical composition operators (repro.graph.structure)."""

import pytest

from repro.graph.filters import FilterSpec
from repro.graph.structure import (
    FeedbackLoop,
    Filt,
    JoinSpec,
    Pipeline,
    SplitJoin,
    SplitKind,
    SplitSpec,
    count_filters,
    duplicate,
    join_roundrobin,
    pipeline,
    roundrobin,
    splitjoin,
)


def _f(name="f", pop=1, push=1, **kw):
    return FilterSpec(name=name, pop=pop, push=push, **kw)


class TestSplitSpec:
    def test_duplicate_pop_equals_weight(self):
        s = duplicate(4, branches=3)
        assert s.kind is SplitKind.DUPLICATE
        assert s.pop_per_firing == 4
        assert s.push_to(0) == s.push_to(2) == 4

    def test_roundrobin_pop_is_sum(self):
        s = roundrobin(1, 2, 3)
        assert s.pop_per_firing == 6
        assert [s.push_to(i) for i in range(3)] == [1, 2, 3]

    def test_duplicate_requires_equal_weights(self):
        with pytest.raises(ValueError):
            SplitSpec(SplitKind.DUPLICATE, (1, 2))

    def test_rejects_empty_weights(self):
        with pytest.raises(ValueError):
            SplitSpec(SplitKind.ROUNDROBIN, ())

    def test_rejects_non_positive_weights(self):
        with pytest.raises(ValueError):
            roundrobin(1, 0)


class TestJoinSpec:
    def test_push_is_sum(self):
        j = join_roundrobin(2, 3)
        assert j.push_per_firing == 5
        assert j.pop_from(1) == 3

    def test_rejects_bad_weights(self):
        with pytest.raises(ValueError):
            JoinSpec(())
        with pytest.raises(ValueError):
            join_roundrobin(-1, 2)


class TestPipeline:
    def test_rates_come_from_ends(self):
        p = pipeline(_f("a", 2, 4), _f("b", 4, 8))
        assert p.pop_rate == 2
        assert p.push_rate == 8

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Pipeline(())

    def test_wraps_bare_specs(self):
        p = pipeline(_f("a"), _f("b"))
        assert all(isinstance(c, Filt) for c in p.children)


class TestSplitJoin:
    def test_rates(self):
        sj = splitjoin(
            duplicate(2, 2), [_f("a", 2, 2), _f("b", 2, 2)], join_roundrobin(2, 2)
        )
        assert sj.pop_rate == 2
        assert sj.push_rate == 4

    def test_branch_count_must_match_weights(self):
        with pytest.raises(ValueError):
            splitjoin(roundrobin(1, 1, 1), [Filt(_f())], join_roundrobin(1))
        with pytest.raises(ValueError):
            splitjoin(roundrobin(1), [Filt(_f())], join_roundrobin(1, 1))


class TestFeedbackLoop:
    def test_requires_binary_join_split(self):
        with pytest.raises(ValueError):
            FeedbackLoop(
                body=Filt(_f()),
                loopback=Filt(_f()),
                join=join_roundrobin(1, 1, 1),
                split=roundrobin(1, 1),
            )

    def test_external_rates(self):
        fb = FeedbackLoop(
            body=Filt(_f("body", 2, 2)),
            loopback=Filt(_f("loop", 1, 1)),
            join=join_roundrobin(1, 1),
            split=roundrobin(1, 1),
            delay=1,
        )
        assert fb.pop_rate == 1
        assert fb.push_rate == 1


def test_count_filters_ignores_synthetic_nodes():
    sj = splitjoin(
        duplicate(1, 2), [_f("a"), pipeline(_f("b"), _f("c"))], join_roundrobin(1, 1)
    )
    root = pipeline(_f("s", 0, 1), sj, _f("t", 2, 0))
    assert count_filters(root) == 5
