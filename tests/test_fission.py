"""Tests for stateless-filter fission."""

import pytest

from repro.flow import map_stream_graph
from repro.graph.builder import GraphBuilder
from repro.graph.filters import FilterRole
from repro.graph.validate import validate_graph
from repro.gpu.functional import FunctionalVM
from repro.opt.fission import fission_filters, fissionable


def _hot_chain(firings=8, work=5000.0, stateful=False, peek=0):
    b = GraphBuilder("hot")
    src = b.filter("src", pop=0, push=firings, role=FilterRole.SOURCE,
                   semantics="source")
    hot = b.filter("hot", pop=1, push=1, work=work, semantics="scale",
                   params=(3.0,), stateful=stateful, peek=peek)
    snk = b.filter("snk", pop=firings, push=0, role=FilterRole.SINK,
                   semantics="sink")
    b.connect(src, hot)
    b.connect(hot, snk, src_push=1, dst_pop=firings)
    return b.build()


class TestEligibility:
    def test_hot_stateless_filter_is_fissionable(self):
        g = _hot_chain()
        hot = g.node_by_name("hot").node_id
        assert fissionable(g, hot, 2)
        assert fissionable(g, hot, 4)

    def test_stateful_filter_is_not(self):
        g = _hot_chain(stateful=True)
        assert not fissionable(g, g.node_by_name("hot").node_id, 2)

    def test_peeking_filter_is_not(self):
        g = _hot_chain(peek=4)
        assert not fissionable(g, g.node_by_name("hot").node_id, 2)

    def test_ways_must_divide_firings(self):
        g = _hot_chain(firings=6)
        hot = g.node_by_name("hot").node_id
        assert fissionable(g, hot, 3)
        assert not fissionable(g, hot, 4)

    def test_sources_and_sinks_excluded(self):
        g = _hot_chain()
        assert not fissionable(g, g.node_by_name("src").node_id, 2)
        assert not fissionable(g, g.node_by_name("snk").node_id, 2)


class TestTransform:
    def test_structure(self):
        g = _hot_chain()
        out, report = fission_filters(g, ways=2)
        assert report.total == 1
        assert report.fissioned[0] == ("hot", 2)
        names = [n.spec.name for n in out.nodes]
        assert "hot.f0" in names and "hot.f1" in names
        assert "hot.fsplit" in names and "hot.fjoin" in names
        validate_graph(out)

    def test_semantics_preserved(self):
        g = _hot_chain()
        out, _ = fission_filters(g, ways=4)
        base = FunctionalVM(g, source_fn=lambda n, i: float(i)).run(3)
        split = FunctionalVM(out, source_fn=lambda n, i: float(i)).run(3)
        assert base == split

    def test_min_work_threshold(self):
        g = _hot_chain(work=1.0)
        out, report = fission_filters(g, ways=2, min_work=1000.0)
        assert report.total == 0
        assert "hot" in report.skipped

    def test_targets_restriction(self):
        g = _hot_chain()
        out, report = fission_filters(
            g, ways=2, targets=[g.node_by_name("src").node_id]
        )
        assert report.total == 0

    def test_replicas_share_work_across_gpus(self):
        """Fission turns one serial hot spot into mapped parallelism."""
        g = _hot_chain(firings=8, work=100_000.0)
        out, report = fission_filters(g, ways=4)
        assert report.total == 1
        base = map_stream_graph(g, num_gpus=4)
        split = map_stream_graph(out, num_gpus=4)
        # the replicas can spread over GPUs, so Tmax must not get worse
        assert split.mapping.tmax <= base.mapping.tmax * 1.05
