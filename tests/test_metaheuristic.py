"""Determinism and exactness guarantees of the metaheuristic tier.

Three families of pins, mirroring ``tests/test_portfolio.py``:

* **determinism** — equal inputs give bit-identical mappings,
  back-to-back in one process *and* across thread- and process-pool
  executors (the SynthRng stream owes nothing to wall clock, thread
  identity, or hash randomization);
* **anytime monotonicity** — ``mh_rounds`` is a work-superset knob: the
  temperature schedule keys on the absolute round index, so a longer
  run replays a shorter run's trajectory exactly and its incumbent can
  only improve;
* **exact-accept** — every returned mapping's ``tmax`` is *bit-equal*
  to the interpreted evaluator's verdict on its assignment (batch
  scores may rank, only the scalar kernel accepts), and an injected
  incumbent is never worsened.

Plus the portfolio integration: the stage is skipped (never run, note
recorded) under every named tier — the pinned golden answers predate
it — and runs under a budget that sets the ``mh_*`` knobs.
"""

import random
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import replace

import pytest

from test_platforms import random_hetero_topology, random_problem

from repro.flow import partition_stage, pdg_stage, profile_stage
from repro.gpu.topology import default_topology
from repro.mapping.budget import BUDGET_TIERS, TIER_ORDER, SolveBudget
from repro.mapping.kernel import EvalKernel
from repro.mapping.metaheuristic import solve_metaheuristic
from repro.mapping.problem import build_mapping_problem
from repro.service.portfolio import solve_portfolio
from repro.synth.corpus import TINY_CORPUS, generate_corpus

NUM_GPUS = 2


@pytest.fixture(scope="module")
def corpus_problems():
    out = []
    for instance in generate_corpus(TINY_CORPUS):
        graph = instance.graph
        engine = profile_stage(graph)
        partitions, partitioning = partition_stage(graph, engine)
        pdg = pdg_stage(graph, partitions, engine, partitioning=partitioning)
        problem = build_mapping_problem(
            pdg, NUM_GPUS, topology=default_topology(NUM_GPUS)
        )
        out.append(
            (instance.spec.instance_name, problem, pdg.topological_order())
        )
    return out


def _fingerprint(result):
    return (
        tuple(result.assignment),
        result.tmax,
        tuple(sorted(result.solve_stats)),
    )


def _solve_seeded(task):
    """Executor worker: build problem ``seed``, solve with pinned knobs.

    Module-level (picklable) so both thread and process pools can run
    it; the problem is rebuilt inside the worker, so nothing is shared
    with the parent beyond the seed.
    """
    seed = task
    from test_platforms import random_hetero_topology, random_problem

    from repro.mapping.metaheuristic import solve_metaheuristic

    problem = random_problem(random_hetero_topology(seed), seed)
    result = solve_metaheuristic(
        problem, rounds=10, population=12, seed=seed
    )
    return (
        tuple(result.assignment),
        result.tmax,
        tuple(sorted(result.solve_stats)),
    )


class TestDeterminism:
    def test_back_to_back_identical(self, corpus_problems):
        for label, problem, _ in corpus_problems:
            first = solve_metaheuristic(
                problem, rounds=8, population=12, seed=7
            )
            second = solve_metaheuristic(
                problem, rounds=8, population=12, seed=7
            )
            assert _fingerprint(first) == _fingerprint(second), label

    def test_thread_pool_matches_serial(self):
        seeds = list(range(6))
        serial = [_solve_seeded(s) for s in seeds]
        with ThreadPoolExecutor(max_workers=3) as pool:
            threaded = list(pool.map(_solve_seeded, seeds))
        assert threaded == serial

    def test_process_pool_matches_serial(self):
        seeds = list(range(4))
        serial = [_solve_seeded(s) for s in seeds]
        with ProcessPoolExecutor(max_workers=2) as pool:
            forked = list(pool.map(_solve_seeded, seeds))
        assert forked == serial

    def test_seed_changes_the_trajectory(self, corpus_problems):
        # not a correctness property, but if every seed walked the same
        # path the multi-start tier would be multi-start in name only
        _, problem, _ = max(
            corpus_problems, key=lambda item: item[1].num_partitions
        )
        kicks = {
            tuple(
                solve_metaheuristic(
                    problem, rounds=8, population=8, seed=seed
                ).assignment
            )
            for seed in range(8)
        }
        assert len(kicks) >= 1  # all valid; diversity is best-effort


class TestAnytimeMonotonicity:
    def test_more_rounds_never_worse(self, corpus_problems):
        """The strict work-superset pin, mirroring the portfolio tiers."""
        for label, problem, _ in corpus_problems:
            tmaxes = [
                solve_metaheuristic(
                    problem, rounds=rounds, population=8, seed=3
                ).tmax
                for rounds in (0, 4, 8, 16)
            ]
            for cheap, rich in zip(tmaxes, tmaxes[1:]):
                assert rich <= cheap, (
                    f"{label}: more rounds worsened tmax "
                    f"({cheap:.6g} -> {rich:.6g})"
                )

    def test_more_population_never_invalid(self, corpus_problems):
        _, problem, _ = corpus_problems[0]
        for population in (1, 2, 5, 16):
            result = solve_metaheuristic(
                problem, rounds=4, population=population, seed=1
            )
            assert result.tmax == problem.tmax(list(result.assignment))

    def test_incumbent_never_worsened(self):
        for seed in range(12):
            problem = random_problem(random_hetero_topology(seed), seed)
            rng = random.Random(seed)
            incumbent = [
                rng.randrange(problem.num_gpus)
                for _ in range(problem.num_partitions)
            ]
            result = solve_metaheuristic(
                problem, rounds=6, population=6, seed=seed,
                incumbent=incumbent,
            )
            assert result.tmax <= problem.tmax(incumbent), seed


class TestExactAccept:
    def test_result_rescores_bit_identical(self, corpus_problems):
        """The acceptance pin: never approx — the scalar kernel's word
        is final, so the result must rescore to the same bits."""
        for label, problem, _ in corpus_problems:
            result = solve_metaheuristic(
                problem, rounds=12, population=16, seed=5
            )
            assert result.tmax == problem.tmax(
                list(result.assignment)
            ), label

    def test_adversarial_trees_rescore_bit_identical(self):
        for seed in range(15):
            problem = random_problem(random_hetero_topology(seed), seed)
            result = solve_metaheuristic(
                problem, rounds=8, population=8, seed=seed
            )
            assert result.tmax == problem.tmax(
                list(result.assignment)
            ), seed

    def test_stats_report_the_work(self, corpus_problems):
        _, problem, _ = corpus_problems[0]
        result = solve_metaheuristic(
            problem, rounds=9, population=11, seed=2
        )
        stats = dict(result.solve_stats)
        assert stats["mh_rounds"] == 9.0
        assert stats["mh_population"] == 11.0
        assert stats["mh_rescores"] >= 1.0  # the seed rescore at least
        assert result.solver == "metaheuristic"
        assert not result.optimal

    def test_shared_kernel_changes_nothing(self, corpus_problems):
        _, problem, _ = corpus_problems[0]
        own = solve_metaheuristic(problem, rounds=6, population=8, seed=4)
        shared = solve_metaheuristic(
            problem, rounds=6, population=8, seed=4,
            kernel=EvalKernel(problem),
        )
        assert _fingerprint(own) == _fingerprint(shared)

    def test_bad_knobs_raise(self, corpus_problems):
        _, problem, _ = corpus_problems[0]
        with pytest.raises(ValueError, match="population"):
            solve_metaheuristic(problem, rounds=4, population=0)
        with pytest.raises(ValueError, match="rounds"):
            solve_metaheuristic(problem, rounds=-1, population=4)


class TestBudgetKnobs:
    def test_named_tiers_keep_the_stage_off(self):
        """The golden portfolio answers predate this tier, so every
        named budget must leave the mh knobs at zero."""
        for name in TIER_ORDER:
            tier = BUDGET_TIERS[name]
            assert tier.mh_rounds == 0, name
            assert tier.mh_population == 0, name

    def test_bare_budget_still_equals_default_tier(self):
        assert SolveBudget() == SolveBudget.tier("default")

    def test_mh_knobs_enter_the_cache_key(self):
        dry = SolveBudget.tier("small").key_parts()
        wet = replace(
            SolveBudget.tier("small"), mh_rounds=8, mh_population=16
        ).key_parts()
        assert dry != wet

    def test_budget_supplies_the_knobs(self, corpus_problems):
        _, problem, _ = corpus_problems[0]
        budget = replace(
            SolveBudget.tier("instant"), mh_rounds=5, mh_population=7,
            mh_seed=9,
        )
        result = solve_metaheuristic(problem, budget=budget)
        stats = dict(result.solve_stats)
        assert stats["mh_rounds"] == 5.0
        assert stats["mh_population"] == 7.0


class TestPortfolioIntegration:
    def test_named_tiers_skip_the_stage(self, corpus_problems):
        _, problem, order = corpus_problems[0]
        for tier in TIER_ORDER:
            answer = solve_portfolio(problem, budget=tier, topo_order=order)
            outcome = answer.stage("metaheuristic")
            assert not outcome.ran, tier
            assert "no rounds budgeted" in outcome.note, tier

    def test_opted_in_stage_runs_and_never_worsens(self, corpus_problems):
        for label, problem, order in corpus_problems:
            base = SolveBudget.tier("small")
            with_mh = replace(base, mh_rounds=8, mh_population=12, mh_seed=1)
            plain = solve_portfolio(problem, budget=base, topo_order=order)
            boosted = solve_portfolio(
                problem, budget=with_mh, topo_order=order
            )
            outcome = boosted.stage("metaheuristic")
            assert outcome.ran, label
            assert outcome.solver == "metaheuristic"
            assert boosted.mapping.tmax <= plain.mapping.tmax, label
            assert boosted.mapping.tmax == problem.tmax(
                list(boosted.mapping.assignment)
            ), label

    def test_stage_is_deterministic_inside_the_portfolio(
        self, corpus_problems
    ):
        _, problem, order = corpus_problems[-1]
        budget = replace(
            SolveBudget.tier("instant"), mh_rounds=6, mh_population=8,
        )
        first = solve_portfolio(problem, budget=budget, topo_order=order)
        second = solve_portfolio(problem, budget=budget, topo_order=order)
        assert first.mapping.assignment == second.mapping.assignment
        assert first.mapping.tmax == second.mapping.tmax
