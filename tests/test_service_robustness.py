"""Service-layer robustness: refusal parity, crash recovery, bad input.

Three separate guarantees, one theme — a degraded service degrades
*politely*:

* **refusal parity** — every retryable refusal (429 shed, 503
  submit-refused/draining) carries a ``Retry-After`` header and a
  machine-readable ``reason`` in the body, so clients back off the
  same way regardless of which limit they hit;
* **crash-robust startup** — a ``JobStore`` pointed at a directory a
  crashed writer left behind sweeps orphaned ``*.tmp`` files, and
  quarantines truncated/corrupt job files as ``*.corrupt`` so their
  keys re-solve instead of crashing the service or shadowing the key;
* **stream resilience** — one malformed JSONL line must cost exactly
  one error response: later lines still solve, and dedup state is not
  poisoned by the garbage in between.
"""

import io
import json
import os
import urllib.error
import urllib.request
from contextlib import contextmanager

from repro.service import (
    AdmissionController,
    JobStore,
    MappingService,
    serve_http,
    serve_stream,
)
from repro.service.http import DRAIN_RETRY_AFTER_S
from repro.service.jobs import DONE, Job


def _post(url, data, headers=None):
    req = urllib.request.Request(
        url, data=data, headers=headers or {}, method="POST")
    try:
        with urllib.request.urlopen(req, timeout=60) as resp:
            return resp.status, resp.read(), resp.headers
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read(), exc.headers


@contextmanager
def _server(service, admission=None):
    server = serve_http(service, port=0, admission=admission)
    try:
        yield server
    finally:
        server.stop()


SOLVE_LINE = json.dumps({"app": "Bitonic", "n": 8, "num_gpus": 2,
                         "budget": "instant"}).encode()
REMAP_BODY = json.dumps({"remap": {
    "app": "Bitonic", "n": 8, "platform": "host-star",
    "budget": "instant",
    "deltas": [{"kind": "kill-gpu", "gpu": 1}],
}}).encode()


# ----------------------------------------------------------------------
# satellite 1: 429 and 503 refusals speak the same retry language
# ----------------------------------------------------------------------
class TestRefusalParity:
    def test_429_shed_carries_retry_after_and_reason(self):
        admission = AdmissionController(rate=0.01, burst=1.0)
        with MappingService() as service:
            with _server(service, admission) as server:
                url = server.url + "/api/v1/solve"
                assert _post(url, SOLVE_LINE)[0] == 200
                status, body, headers = _post(url, SOLVE_LINE)
        assert status == 429
        payload = json.loads(body)
        assert payload["reason"] == "rate"
        assert int(headers["Retry-After"]) == payload["retry_after"] >= 1

    def test_503_solve_refusal_carries_retry_after_and_reason(self):
        """The parity half: a drained service's 503 must say how long
        to back off, exactly like a 429 does."""
        service = MappingService(workers=1)
        with _server(service) as server:
            service.shutdown(wait=True)
            status, body, headers = _post(
                server.url + "/api/v1/solve", SOLVE_LINE)
        assert status == 503
        payload = json.loads(body)
        assert payload["reason"] == "draining"
        assert payload["retry_after"] == DRAIN_RETRY_AFTER_S
        assert int(headers["Retry-After"]) == DRAIN_RETRY_AFTER_S
        assert "error" in payload

    def test_503_remap_refusal_matches(self):
        service = MappingService(workers=1)
        with _server(service) as server:
            service.shutdown(wait=True)
            status, body, headers = _post(
                server.url + "/api/v1/remap", REMAP_BODY)
        assert status == 503
        payload = json.loads(body)
        assert payload["reason"] == "draining"
        assert int(headers["Retry-After"]) == DRAIN_RETRY_AFTER_S


# ----------------------------------------------------------------------
# satellite 2: JobStore startup survives a crashed writer
# ----------------------------------------------------------------------
class TestJobStoreCrashRecovery:
    def test_orphaned_tmp_files_are_swept(self, tmp_path):
        store_dir = str(tmp_path)
        JobStore(store_dir).put(
            Job(key="good", request={"app": "DES"}, state=DONE,
                result={"tmax": 1.0}))
        orphan = tmp_path / "abc123.tmp"
        orphan.write_text('{"half": "written')
        store = JobStore(store_dir)
        assert not orphan.exists()
        assert store.get("good") is not None
        assert len(store) == 1

    def test_corrupt_job_is_quarantined_and_key_resolves(self, tmp_path):
        store_dir = str(tmp_path)
        first = JobStore(store_dir)
        first.put(Job(key="broken", request={"app": "DES"}, state=DONE,
                      result={"tmax": 1.0}))
        first.put(Job(key="intact", request={"app": "FFT"}, state=DONE,
                      result={"tmax": 2.0}))
        path = tmp_path / "broken.job.json"
        path.write_text('{"key": "broken", "state": "do')  # truncated

        store = JobStore(store_dir)
        # the broken key is free again (it will re-solve), the intact
        # one still dedups, and the bytes survive for a post-mortem
        assert store.get("broken") is None
        assert store.get("intact").result == {"tmax": 2.0}
        assert not path.exists()
        assert (tmp_path / "broken.job.json.corrupt").exists()

        # the quarantined key re-persists cleanly on the next solve
        store.put(Job(key="broken", request={"app": "DES"}, state=DONE,
                      result={"tmax": 3.0}))
        again = JobStore(store_dir)
        assert again.get("broken").result == {"tmax": 3.0}

    def test_wrong_shape_json_is_also_quarantined(self, tmp_path):
        (tmp_path / "weird.job.json").write_text('["not", "a", "job"]')
        store = JobStore(str(tmp_path))
        assert len(store) == 0
        assert (tmp_path / "weird.job.json.corrupt").exists()

    def test_service_starts_on_a_dirty_store_dir(self, tmp_path):
        (tmp_path / "leftover.tmp").write_text("x")
        (tmp_path / "bad.job.json").write_text("{{{{")
        store = JobStore(str(tmp_path))
        with MappingService(workers=1, store=store) as service:
            from repro.service import MappingRequest

            ticket = service.submit(MappingRequest(
                app="Bitonic", n=8, num_gpus=2, budget="instant"))
            assert ticket.result()["tmax"] > 0


# ----------------------------------------------------------------------
# satellite 3: a malformed stream line is one failure, not a poison
# ----------------------------------------------------------------------
class TestStreamResilience:
    def test_malformed_line_between_two_valid_requests(self):
        line = json.dumps({"app": "Bitonic", "n": 8, "num_gpus": 2,
                           "budget": "instant"})
        stream = "\n".join([line, '{"app": "Bitonic", "n": 8, ', line])
        out = io.StringIO()
        with MappingService(workers=2) as service:
            failures = serve_stream(
                io.StringIO(stream + "\n"), out, service)
            stats = service.stats()
        responses = [json.loads(t) for t in out.getvalue().splitlines()]

        # exactly one error response, in input order
        assert failures == 1
        assert [r["state"] for r in responses] == [
            "done", "failed", "done"]
        assert "line 2" in responses[1]["error"]

        # the stream was not aborted and dedup was not poisoned: the
        # two valid duplicates share one solve and one key
        assert responses[0]["key"] == responses[2]["key"]
        assert responses[0]["result"] == responses[2]["result"]
        assert stats.solved == 1
        assert stats.submitted == 2
