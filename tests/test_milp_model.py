"""The persistent compiled MILP model: structure, determinism, reuse.

Pins the tentpole invariants of the warm-started MILP backend
(:mod:`repro.mapping.milp_model`):

* the compiled model's canonical CSC arrays are **bit-identical** to
  what the legacy row-by-row builder hands scipy, on the pinned corpus
  x the catalog platforms — so switching backends cannot move a single
  float;
* fresh-vs-reused and back-to-back solves agree **exactly**
  (assignment, tmax, node counts) under a fixed budget — model reuse
  must not change node ordering;
* a warm-started capped solve never answers worse than the injected
  incumbent;
* the direct-HiGHS backend and the ``scipy.optimize.milp`` fallback
  agree on optimal instances;
* the bounded cache is structurally keyed (numeric payload changes
  share a model; shape/platform/``include_comm`` changes do not), LRU
  at capacity, and safe under thread hammering.
"""

import threading
from dataclasses import replace

import numpy as np
import pytest
from scipy.optimize._milp import _constraints_to_components

from repro.flow import partition_stage, pdg_stage, profile_stage
from repro.gpu.platforms import build_platform
from repro.gpu.topology import default_topology
from repro.mapping.budget import SolveBudget
from repro.mapping.greedy import lpt_mapping
from repro.mapping.milp_model import (
    CompiledMilpModel,
    MilpModelCache,
    highs_backend_available,
    milp_signature,
)
from repro.mapping.problem import MappingProblem, build_mapping_problem
from repro.mapping.solver_milp import _Builder, solve_milp
from repro.synth.corpus import PINNED_CORPUS, generate_corpus

PLATFORMS = ("g2", "g4", "mixed-box", "two-island")


def _topology(name):
    if name == "g2":
        return default_topology(2)
    if name == "g4":
        return default_topology(4)
    return build_platform(name)


@pytest.fixture(scope="module")
def corpus_pdgs():
    """(label, pdg) for every pinned corpus instance."""
    out = []
    for instance in generate_corpus(PINNED_CORPUS):
        graph = instance.graph
        engine = profile_stage(graph)
        partitions, partitioning = partition_stage(graph, engine)
        pdg = pdg_stage(graph, partitions, engine, partitioning=partitioning)
        out.append((instance.spec.instance_name, pdg))
    return out


@pytest.fixture(scope="module")
def corpus_problems(corpus_pdgs):
    """(label, platform, MappingProblem) across the catalog platforms."""
    out = []
    for label, pdg in corpus_pdgs:
        for name in PLATFORMS:
            topo = _topology(name)
            out.append((
                label, name,
                build_mapping_problem(pdg, topo.num_gpus, topology=topo),
            ))
    return out


class TestCompiledStructure:
    def test_canonical_csc_matches_the_legacy_builder(self, corpus_problems):
        """The compiled arrays (structure, values, bounds, objective,
        integrality) equal scipy's conversion of the legacy constraint
        blocks bit-for-bit — the backend switch moves no float."""
        for label, name, problem in corpus_problems:
            for include_comm in (True, False):
                builder = _Builder(problem, include_comm)
                builder.build()
                a, b_l, b_u = _constraints_to_components(builder.constraints)
                a = a.tocsc()
                a.sort_indices()
                model = CompiledMilpModel(problem, include_comm)
                data = model.bind(problem)
                where = (label, name, include_comm)
                assert np.array_equal(a.indptr, model._csc_indptr), where
                assert np.array_equal(a.indices, model._csc_indices), where
                assert np.array_equal(a.data, data), where
                assert np.array_equal(b_l, model.row_lower), where
                assert np.array_equal(b_u, model.row_upper), where
                assert np.array_equal(builder.objective, model.objective)
                assert np.array_equal(
                    builder.integrality.astype(np.uint8), model.integrality
                ), where

    def test_rebinding_another_payload_is_exact_too(self, corpus_pdgs):
        """One compiled model, rebound to a different numeric payload of
        the same shape, reproduces a fresh build of *that* payload."""
        _, pdg = max(corpus_pdgs, key=lambda item: len(item[1]))
        topo = _topology("mixed-box")
        base = build_mapping_problem(pdg, topo.num_gpus, topology=topo)
        scaled = replace(
            base,
            times=[t * 1.75 for t in base.times],
            edges={e: b * 3.0 for e, b in base.edges.items()},
            host_io=[(i * 2.0, o * 2.0) for i, o in base.host_io],
        )
        model = CompiledMilpModel(base)
        assert model.matches(scaled)
        builder = _Builder(scaled, True)
        builder.build()
        a, _, _ = _constraints_to_components(builder.constraints)
        a = a.tocsc()
        a.sort_indices()
        assert np.array_equal(a.data, model.bind(scaled))


class TestSolveDeterminism:
    BUDGET = SolveBudget.tier("default")

    def test_fresh_vs_reused_and_back_to_back_are_bit_identical(
        self, corpus_problems
    ):
        """The tentpole invariant: build->solve, rebind->solve, and a
        from-scratch second compile all return byte-identical answers
        (assignment, tmax, milp_nodes) under a fixed budget."""
        for label, name, problem in corpus_problems:
            first = solve_milp(
                problem, budget=self.BUDGET, model_cache=MilpModelCache()
            )
            cache = MilpModelCache()
            reused_a = solve_milp(problem, budget=self.BUDGET, model_cache=cache)
            reused_b = solve_milp(problem, budget=self.BUDGET, model_cache=cache)
            where = (label, name)
            # the second solve really did reuse the compiled model ...
            cache_stats = cache.stats()
            assert (cache_stats["misses"], cache_stats["hits"]) == (1, 1)
            stats = [
                dict(r.solve_stats) for r in (first, reused_a, reused_b)
            ]
            # ... and reuse is invisible in the result — byte-equal
            # solve_stats regardless of cache state
            assert stats[0] == stats[1] == stats[2], where
            for other in (reused_a, reused_b):
                assert first.assignment == other.assignment, where
                assert first.tmax == other.tmax, where
                assert first.optimal == other.optimal, where

    def test_warm_started_capped_solve_never_worse_than_incumbent(
        self, corpus_problems
    ):
        """Injecting an incumbent into a node-capped solve can only
        improve the answer — the MIP start is the floor."""
        capped = replace(self.BUDGET, milp_node_limit=1)
        for label, name, problem in corpus_problems:
            incumbent = list(lpt_mapping(problem).assignment)
            result = solve_milp(problem, budget=capped, incumbent=incumbent)
            assert result.tmax <= problem.tmax(incumbent) * (1 + 1e-12), (
                label, name,
            )

    @pytest.mark.skipif(
        not highs_backend_available(),
        reason="no direct HiGHS bindings; only the scipy path exists",
    )
    def test_direct_and_scipy_backends_agree_on_optimal_instances(
        self, corpus_problems
    ):
        """Both backends run the same arrays through the same solver
        configuration, so proven-optimal answers must coincide."""
        checked = 0
        for label, name, problem in corpus_problems:
            if name != "g2":  # one platform is plenty for backend parity
                continue
            model = CompiledMilpModel(problem)
            direct = model.solve(problem, self.BUDGET, backend="highs")
            if direct["status"] != 0:
                continue
            fallback = model.solve(problem, self.BUDGET, backend="scipy")
            assert fallback["status"] == 0, (label, name)
            assert np.array_equal(direct["x"], fallback["x"]), (label, name)
            assert direct["mip_node_count"] == fallback["mip_node_count"]
            checked += 1
        assert checked >= 5  # the parity claim must actually be exercised


class TestSignatureAndCache:
    def _problem(self, times=(4.0, 3.0, 2.0, 1.0), nbytes=8.0, gpus=2):
        return MappingProblem(
            times=list(times),
            edges={(0, 1): nbytes},
            host_io=[(0.0, 0.0)] * len(times),
            topology=default_topology(gpus),
        )

    def test_numeric_payload_stays_out_of_the_signature(self):
        assert milp_signature(self._problem()) == milp_signature(
            self._problem(times=(9.0, 8.0, 7.0, 6.0), nbytes=1024.0)
        )

    def test_structure_enters_the_signature(self):
        base = self._problem()
        assert milp_signature(base) != milp_signature(
            self._problem(gpus=4)
        )
        assert milp_signature(base) != milp_signature(base, include_comm=False)
        rerouted = replace(base, peer_to_peer=False)
        assert milp_signature(base) != milp_signature(rerouted)
        with_io = replace(base, host_io=[(64.0, 0.0)] + [(0.0, 0.0)] * 3)
        assert milp_signature(base) != milp_signature(with_io)
        # moving the heaviest partition moves the symmetry-breaking
        # anchor, which is a *row* of the model, hence structural
        anchor_moved = self._problem(times=(1.0, 2.0, 3.0, 4.0))
        assert milp_signature(base) != milp_signature(anchor_moved)

    def test_platform_content_enters_the_signature(self):
        """Same GPU count, different machine content: no model sharing."""
        pdg_free = self._problem(gpus=4)
        other = replace(pdg_free, topology=build_platform("mixed-box"))
        assert milp_signature(pdg_free) != milp_signature(other)

    def test_cache_reuses_across_payloads_and_counts(self):
        cache = MilpModelCache(capacity=4)
        model_a, reused_a = cache.get_or_compile(self._problem())
        # a payload change that keeps the symmetry anchor (the argmax
        # partition) in place — the anchor is part of the row structure
        model_b, reused_b = cache.get_or_compile(
            self._problem(times=(40.0, 2.0, 3.0, 4.0), nbytes=512.0)
        )
        assert (reused_a, reused_b) == (False, True)
        assert model_a is model_b
        stats = cache.stats()
        assert (stats["hits"], stats["misses"], stats["size"]) == (1, 1, 1)

    def test_lru_eviction_at_capacity(self):
        cache = MilpModelCache(capacity=2)
        a = self._problem()
        b = self._problem(gpus=4)
        c = replace(self._problem(gpus=4), topology=build_platform("mixed-box"))
        cache.get_or_compile(a)
        cache.get_or_compile(b)
        cache.get_or_compile(a)  # refresh a: b is now least recent
        cache.get_or_compile(c)  # evicts b
        assert cache.get_or_compile(a)[1] is True
        assert cache.get_or_compile(b)[1] is False  # recompiled
        assert cache.stats()["evictions"] >= 2
        assert len(cache) == 2

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError, match="capacity"):
            MilpModelCache(capacity=0)

    def test_thread_hammer_one_compile_identical_answers(self):
        """Many threads racing one signature: every solve returns the
        same answer and the cache stays consistent."""
        cache = MilpModelCache(capacity=4)
        problem = self._problem(times=(40.0, 30.0, 20.0, 10.0))
        budget = SolveBudget.tier("default")
        results, errors = [], []

        def worker():
            try:
                result = solve_milp(
                    problem, budget=budget, model_cache=cache
                )
                results.append((tuple(result.assignment), result.tmax))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(12)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(set(results)) == 1
        stats = cache.stats()
        assert stats["size"] == 1
        assert stats["hits"] + stats["misses"] == 12
