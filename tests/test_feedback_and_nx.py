"""Tests for feedback-loop handling through the whole flow, and for the
NetworkX bridge."""

import networkx as nx
import pytest

from repro.flow import map_stream_graph
from repro.graph.filters import FilterSpec, sink, source
from repro.graph.flatten import flatten
from repro.graph.nx_bridge import (
    forward_dag,
    pdg_to_networkx,
    quotient_graph,
    to_networkx,
)
from repro.graph.structure import (
    FeedbackLoop,
    Filt,
    join_roundrobin,
    pipeline,
    roundrobin,
)
from repro.apps.registry import build_app
from repro.partition.convexity import ConvexityOracle
from repro.perf.engine import PerformanceEstimationEngine


def _feedback_app(work=4000.0, rate=64):
    """An adaptive-filter-like app: heavy body with a decaying feedback."""
    loop = FeedbackLoop(
        body=Filt(FilterSpec(name="body", pop=2 * rate, push=2 * rate,
                             work=work)),
        loopback=Filt(FilterSpec(name="adapt", pop=rate, push=rate,
                                 work=work / 4)),
        join=join_roundrobin(rate, rate),
        split=roundrobin(rate, rate),
        delay=rate,
    )
    root = pipeline(
        source("src", rate, work=float(rate)),
        FilterSpec(name="pre", pop=rate, push=rate, work=work),
        loop,
        FilterSpec(name="post", pop=rate, push=rate, work=work),
        sink("snk", rate, work=float(rate)),
    )
    return flatten(root, "feedback-app")


class TestFeedbackFlow:
    def test_flow_runs_end_to_end(self):
        g = _feedback_app()
        result = map_stream_graph(g, num_gpus=2)
        assert result.report.makespan_ns > 0

    def test_feedback_edge_tracked_when_cut(self):
        g = _feedback_app()
        engine = PerformanceEstimationEngine(g)
        result = map_stream_graph(g, num_gpus=2, engine=engine)
        total_feedback = sum(result.pdg.feedback_edges.values())
        delay_channels = [ch for ch in g.channels if ch.delay]
        assert delay_channels
        # either the loop stayed in one partition (no feedback PDG edge)
        # or the traffic is accounted
        assignment = result.pdg
        cut = any(
            True for ch in delay_channels
            if _pid(result, ch.src) != _pid(result, ch.dst)
        )
        assert (total_feedback > 0) == cut

    def test_pdg_topological_order_ignores_feedback(self):
        g = _feedback_app()
        result = map_stream_graph(g, num_gpus=2)
        order = result.pdg.topological_order()
        assert sorted(order) == list(range(result.num_partitions))


def _pid(result, nid):
    return result.partitioning.assignment[nid] if result.partitioning else 0


class TestNxBridge:
    def test_node_and_edge_counts(self):
        g = build_app("FFT", 16)
        nxg = to_networkx(g)
        assert nxg.number_of_nodes() == len(g.nodes)
        assert nxg.number_of_edges() == len(g.channels)

    def test_forward_dag_is_acyclic_even_with_feedback(self):
        g = _feedback_app()
        dag = forward_dag(g)
        assert nx.is_directed_acyclic_graph(dag)

    def test_reachability_matches_oracle(self):
        """Cross-check our bitmask reachability against networkx."""
        g = build_app("Bitonic", 16)
        dag = forward_dag(g)
        oracle = ConvexityOracle(g)
        for nid in (0, len(g.nodes) // 2, len(g.nodes) - 1):
            ours = set(oracle.members_of(oracle.descendants(1 << nid)))
            theirs = set(nx.descendants(dag, nid)) | {nid}
            assert ours == theirs

    def test_convexity_matches_networkx_definition(self):
        g = build_app("FFT", 16)
        dag = forward_dag(g)
        oracle = ConvexityOracle(g)
        nodes = [n.node_id for n in g.nodes]
        import itertools

        for pair in itertools.combinations(nodes[:8], 2):
            members = set(pair)
            mask = oracle.mask_of(members)
            # independent convexity check: no path u ->* x ->* v with
            # x outside the set
            convex = True
            for u in members:
                for v in members:
                    if u == v:
                        continue
                    for path in _some_paths(dag, u, v):
                        if any(x not in members for x in path[1:-1]):
                            convex = False
            assert oracle.is_convex(mask) == convex, pair

    def test_quotient_matches_pdg(self):
        g = build_app("DCT", 6)
        result = map_stream_graph(g, num_gpus=1)
        q = quotient_graph(g, result.partitions)
        assert nx.is_directed_acyclic_graph(q)
        pdg_nx = pdg_to_networkx(result.pdg)
        # every private PDG edge appears in the quotient
        for (src, dst) in result.pdg.edges:
            assert q.has_edge(src, dst)
        assert pdg_nx.number_of_nodes() == result.num_partitions


def _some_paths(dag, u, v, limit=50):
    try:
        return list(
            itertools_islice(nx.all_simple_paths(dag, u, v), limit)
        )
    except nx.NetworkXNoPath:
        return []


def itertools_islice(iterable, limit):
    import itertools

    return itertools.islice(iterable, limit)
