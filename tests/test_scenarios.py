"""Degradation scenarios: determinism, legality, and the replay harness.

The generator must be a pure function of ``(platform, seed, length)``,
every generated script must be legal by construction (never kills the
last GPU, only restores a degraded machine), and the replay harness
must come back clean — repairs valid, bit-exact, and no worse than the
greedy floor — across seeds and platforms.  The kill-GPU sweep behind
``make remap-check`` is exercised end to end, and the JSONL rendering
of a scenario must drain through ``serve_stream`` without failures.
"""

import io
import json

import pytest

from repro.gpu import PLATFORM_NAMES, build_platform
from repro.service import MappingService, serve_stream
from repro.synth import (
    EVENT_KINDS,
    generate_scenario,
    repair_check,
    replay_scenario,
    scenario_request_lines,
)


class TestGeneration:
    def test_deterministic_in_platform_seed_length(self):
        a = generate_scenario("mixed-box", 7, length=6)
        b = generate_scenario("mixed-box", 7, length=6)
        assert a == b
        assert generate_scenario("mixed-box", 8, length=6) != a
        assert generate_scenario("host-star", 7, length=6) != a

    def test_events_use_the_typed_vocabulary(self):
        scenario = generate_scenario("deep-tree-8", 3, length=8)
        assert len(scenario.events) == 8
        for event in scenario.events:
            assert event.kind in EVENT_KINDS

    def test_scripts_are_legal_by_construction(self):
        """Across many seeds, applying every platform event in order
        never raises — no kill of the last GPU, no restore of a
        pristine machine, no slow without specs."""
        from repro.gpu import apply_deltas

        for platform in PLATFORM_NAMES:
            base = build_platform(platform)
            for seed in range(10):
                scenario = generate_scenario(platform, seed, length=8)
                deltas = []
                for event in scenario.events:
                    if event.delta is None:
                        continue
                    deltas.append(event.delta)
                    hit = apply_deltas(base, deltas)  # must not raise
                    if event.delta.kind == "restore":
                        deltas = []
                    assert hit.topology.num_gpus >= 1

    def test_describe_is_human_readable(self):
        scenario = generate_scenario("host-star", 1, length=4)
        for event in scenario.events:
            assert event.kind.split("-")[0] in event.describe()


class TestReplay:
    @pytest.mark.parametrize("platform,seed", [
        ("host-star", 0),
        ("mixed-box", 5),
        ("two-island", 2),
    ])
    def test_replay_comes_back_clean(self, platform, seed):
        scenario = generate_scenario(platform, seed, length=5)
        report = replay_scenario(scenario, budget="instant")
        assert report.ok, report.violations
        # gap is repair/resolve: positive, and bounded by the greedy
        # floor the checker enforces on every step
        assert 0.0 < report.worst_gap

    def test_replay_is_deterministic(self):
        scenario = generate_scenario("deep-tree-8", 9, length=4)
        a = replay_scenario(scenario, budget="instant")
        b = replay_scenario(scenario, budget="instant")
        assert a.render() == b.render()


class TestRepairCheck:
    def test_kill_gpu_sweep_over_the_catalog(self):
        report = repair_check(budget="instant")
        assert report.ok, report.violations
        # 3 pinned graphs x every GPU of every catalog platform
        total_gpus = sum(
            build_platform(name).num_gpus for name in PLATFORM_NAMES
        )
        assert report.checks == 3 * total_gpus
        assert report.worst_gap <= 1.0 + 1e-9
        assert "remap-check" in report.render()


class TestServeStreamReplay:
    def test_scenario_lines_drain_without_failures(self):
        scenario = generate_scenario("host-star", 4, length=5)
        lines = scenario_request_lines(scenario, budget="instant")
        assert lines, "scenario rendered no request lines"
        for line in lines:
            payload = json.loads(line)
            inner = payload.get("remap", payload)
            assert inner["budget"] == "instant"
        out = io.StringIO()
        with MappingService(workers=2) as service:
            failures = serve_stream(
                io.StringIO("\n".join(lines) + "\n"), out, service
            )
        assert failures == 0
        responses = [
            json.loads(text) for text in out.getvalue().splitlines()
        ]
        assert len(responses) == len(lines)
        assert all(r["state"] == "done" for r in responses)
