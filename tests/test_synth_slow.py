"""Wide synthetic-corpus sweeps, opt-in only.

These extend the tier-1 property tests to larger instances, more seeds,
and higher GPU counts.  They are marked ``slow`` and additionally gated
on ``REPRO_SLOW=1`` so the tier-1 run (`make test`) never pays for them;
run them with ``make test-slow``.
"""

import os

import pytest

from repro.synth import FAMILIES, generate
from repro.synth.diffcheck import diffcheck_graph

pytestmark = [
    pytest.mark.slow,
    pytest.mark.skipif(
        os.environ.get("REPRO_SLOW") != "1",
        reason="slow corpus sweep; set REPRO_SLOW=1 (make test-slow)",
    ),
]

WIDE = {
    "pipeline": {"depth": 16},
    "splitjoin": {"width": 6, "nest": 2},
    "butterfly": {"stages": 4},
    "feedback": {"loops": 3},
    "random": {"depth": 4, "max_branch": 4},
    "dag": {"layers": 8, "width": 5},
}


@pytest.mark.parametrize("family", FAMILIES)
def test_wide_corpus_diffcheck(family):
    failures = []
    for seed in range(8):
        instance = generate(family, seed + 100, WIDE[family])
        for gpus in (2, 4):
            # a tight B&B budget keeps large instances bounded: an
            # exhausted budget is a recorded skip, never a failure
            report = diffcheck_graph(
                instance, num_gpus=gpus, bb_max_nodes=100_000,
                milp_time_limit_s=5.0,
            )
            if not report.ok:
                failures.append(
                    f"{report.label} g={gpus}: {report.violations}"
                )
    assert not failures, "\n".join(failures)


@pytest.mark.parametrize("family", FAMILIES)
def test_wide_corpus_fingerprint_stability(family):
    for seed in range(50):
        a = generate(family, seed + 500, WIDE[family])
        b = generate(family, seed + 500, WIDE[family])
        assert a.fingerprint == b.fingerprint
        assert a.json() == b.json()
