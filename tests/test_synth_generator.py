"""Generator-level tests for :mod:`repro.synth`: determinism, provenance,
fingerprint/cache-key separation, and app-name routing."""

import pytest

from repro.apps.registry import build_app, is_known_app
from repro.flow import stage_key
from repro.graph.builder import linear_pipeline_graph
from repro.graph.fingerprint import graph_fingerprint
from repro.graph.validate import validate_graph
from repro.synth import (
    FAMILIES,
    FAMILY_DEFAULTS,
    TREE_FAMILIES,
    SourceUnavailableError,
    SynthError,
    SynthRng,
    SynthSpec,
    build_synth_app,
    generate,
    parse_app_name,
    synth_app_name,
)


class TestRng:
    def test_same_token_same_stream(self):
        a = SynthRng("x|1|d=2")
        b = SynthRng("x|1|d=2")
        assert [a.next_u64() for _ in range(8)] == [
            b.next_u64() for _ in range(8)
        ]

    def test_different_tokens_diverge(self):
        a = SynthRng("x|1|d=2")
        b = SynthRng("x|2|d=2")
        assert [a.next_u64() for _ in range(4)] != [
            b.next_u64() for _ in range(4)
        ]

    def test_randint_bounds_and_coverage(self):
        rng = SynthRng("bounds")
        draws = [rng.randint(2, 5) for _ in range(200)]
        assert set(draws) == {2, 3, 4, 5}

    def test_randint_rejects_empty_range(self):
        with pytest.raises(ValueError):
            SynthRng("x").randint(3, 2)

    def test_choice_and_sample(self):
        rng = SynthRng("pick")
        assert rng.choice([42]) == 42
        assert sorted(rng.sample(range(5), 5)) == [0, 1, 2, 3, 4]
        with pytest.raises(ValueError):
            rng.sample([1], 2)

    def test_shuffle_is_permutation(self):
        rng = SynthRng("mix")
        items = list(range(10))
        rng.shuffle(items)
        assert sorted(items) == list(range(10))

    def test_pinned_stream_values(self):
        """The stream itself is pinned: any change to the RNG algorithm
        silently regenerates every corpus, so fail loudly instead."""
        rng = SynthRng("pipeline|7|")
        assert [rng.randint(1, 1000) for _ in range(3)] == [897, 349, 159]


class TestGenerate:
    @pytest.mark.parametrize("family", FAMILIES)
    def test_deterministic_and_valid(self, family):
        a = generate(family, 11)
        b = generate(family, 11)
        assert a.fingerprint == b.fingerprint
        assert a.json() == b.json()
        validate_graph(a.graph)

    @pytest.mark.parametrize("family", FAMILIES)
    def test_seed_changes_graph(self, family):
        assert generate(family, 1).fingerprint != generate(family, 2).fingerprint

    def test_params_change_graph_and_name(self):
        base = generate("pipeline", 3)
        deep = generate("pipeline", 3, {"depth": 12})
        assert base.fingerprint != deep.fingerprint
        assert base.spec.instance_name != deep.spec.instance_name
        assert len(deep.graph.nodes) > len(base.graph.nodes)

    def test_unknown_family_and_param_rejected(self):
        with pytest.raises(SynthError):
            generate("nosuch", 1)
        with pytest.raises(SynthError):
            generate("pipeline", 1, {"nosuch": 3})
        with pytest.raises(SynthError):
            generate("pipeline", 1, {"depth": 0})

    def test_fanout_families_need_two_branches(self):
        """width/max_branch floors: a clean SynthError at spec time, not
        an empty-range crash inside the generator."""
        with pytest.raises(SynthError, match=">= 2"):
            generate("splitjoin", 1, {"width": 1})
        with pytest.raises(SynthError, match=">= 2"):
            generate("random", 1, {"max_branch": 1})
        for seed in range(6):  # the floors themselves generate fine
            generate("splitjoin", seed, {"width": 2})
            generate("random", seed, {"max_branch": 2})

    @pytest.mark.parametrize("family", TREE_FAMILIES)
    def test_tree_families_emit_source(self, family):
        instance = generate(family, 5)
        text = instance.source()
        assert text.startswith("pipeline Main {")
        assert text.endswith("}\n")

    def test_dag_family_has_no_source(self):
        instance = generate("dag", 5)
        assert instance.tree is None
        with pytest.raises(SourceUnavailableError):
            instance.source()

    def test_dag_is_acyclic_and_connected(self):
        for seed in range(10):
            graph = generate("dag", seed).graph
            assert graph.is_dag()
            validate_graph(graph)


class TestSpecProvenance:
    def test_default_instance_name_is_plain(self):
        assert SynthSpec.make("dag", 4).instance_name == "synth-dag-s4"

    def test_override_instance_name_carries_digest(self):
        name = SynthSpec.make("dag", 4, {"layers": 6}).instance_name
        assert name.startswith("synth-dag-s4-p") and len(name) > len(
            "synth-dag-s4"
        )

    def test_token_covers_merged_params(self):
        token = SynthSpec.make("pipeline", 2).token
        for key in FAMILY_DEFAULTS["pipeline"]:
            assert key in token


class TestFingerprintAndCacheKeys:
    """Regression: StageCache keys for synth graphs must never collide.

    Stage keys digest the graph fingerprint, and the fingerprint digests
    the graph *name*, which for synth graphs carries the full
    ``(family, seed, params)`` provenance — so two distinct specs yield
    distinct cache keys even if their random draws were to produce
    byte-identical structure.
    """

    def test_fingerprints_unique_across_families_and_seeds(self):
        fps = {}
        for family in FAMILIES:
            for seed in range(25):
                fp = generate(family, seed).fingerprint
                assert fp not in fps, (
                    f"collision: {family}/{seed} vs {fps[fp]}"
                )
                fps[fp] = f"{family}/{seed}"

    def test_identical_structure_different_provenance_differs(self):
        """The provenance-in-name fix, isolated: byte-identical structure
        under different (family, seed) identities must not share a
        fingerprint or any derived stage key."""
        a = linear_pipeline_graph("synth-fake-s1", stages=3)
        b = linear_pipeline_graph("synth-fake-s2", stages=3)
        fp_a, fp_b = graph_fingerprint(a), graph_fingerprint(b)
        assert fp_a != fp_b
        key_a = stage_key("profile", graph=fp_a, engine={})
        key_b = stage_key("profile", graph=fp_b, engine={})
        assert key_a != key_b

    def test_stage_keys_unique_on_pinned_corpus(self):
        from repro.synth import PINNED_CORPUS, generate_corpus

        keys = set()
        for instance in generate_corpus(PINNED_CORPUS):
            key = stage_key(
                "partition", graph=instance.fingerprint, engine={},
                partitioner="ours",
            )
            assert key not in keys
            keys.add(key)
        assert len(keys) == len(PINNED_CORPUS)


class TestAppNameRouting:
    def test_parse_and_format_roundtrip(self):
        name = synth_app_name("dag", {"layers": 6, "width": 2})
        family, overrides = parse_app_name(name)
        assert family == "dag"
        assert overrides == {"layers": 6, "width": 2}

    def test_parse_rejects_garbage(self):
        with pytest.raises(SynthError):
            parse_app_name("DES")
        with pytest.raises(SynthError):
            parse_app_name("synth:dag;layers=big")

    def test_build_app_routes_synth_names(self):
        graph = build_app("synth:feedback", 2)
        assert graph.name == "synth-feedback-s2"
        assert graph_fingerprint(graph) == generate("feedback", 2).fingerprint

    def test_build_app_routes_params(self):
        via_app = build_app("synth:pipeline;depth=12", 3)
        direct = generate("pipeline", 3, {"depth": 12})
        assert graph_fingerprint(via_app) == direct.fingerprint

    def test_build_synth_app_unknown_family(self):
        with pytest.raises(SynthError):
            build_synth_app("synth:nosuch", 1)

    def test_is_known_app(self):
        assert is_known_app("DES")
        assert is_known_app("synth:random")
        assert is_known_app("synth:dag;layers=3")
        assert not is_known_app("synth:nosuch")
        assert not is_known_app("Nope")

    def test_is_known_app_validates_params(self):
        """Bad parameter names/values are caught at validation time, so
        a sweep's pre-flight check rejects them before the grid runs
        (the seed-dependent firing-explosion guard is the one failure
        class that can only surface inside build_app)."""
        assert not is_known_app("synth:dag;bogus=3")
        assert not is_known_app("synth:dag;layers=big")
        assert not is_known_app("synth:splitjoin;width=1")
