"""Doctest execution and statistical checks on the simulator's noise."""

import doctest
import importlib
import statistics

import pytest

from repro.graph.builder import linear_pipeline_graph
from repro.gpu.kernel import KernelConfig
from repro.gpu.simulator import KernelSimulator, SimCosts, _hash01, _signed
from repro.gpu.specs import M2090

#: every module whose public API carries executable examples; the
#: docs-check target (tools/docs_check.py) keeps this honest for the
#: top-level exports
DOCTEST_MODULES = [
    "repro.apps.registry",
    "repro.flow",
    "repro.frontend.parser",
    "repro.gpu.delta",
    "repro.gpu.topology",
    "repro.graph.builder",
    "repro.graph.fingerprint",
    "repro.graph.flatten",
    "repro.gpu.memory",
    "repro.gpu.platforms",
    "repro.mapping.batch",
    "repro.mapping.budget",
    "repro.mapping.greedy",
    "repro.mapping.kernel",
    "repro.mapping.metaheuristic",
    "repro.mapping.problem",
    "repro.mapping.refine",
    "repro.mapping.repair",
    "repro.mapping.solver_bb",
    "repro.mapping.solver_milp",
    "repro.partition.heuristic",
    "repro.service",
    "repro.service.admission",
    "repro.service.api",
    "repro.service.http",
    "repro.service.jobs",
    "repro.service.portfolio",
    "repro.service.queue",
    "repro.service.remap",
    "repro.service.server",
    "repro.sweep",
    "repro.sweep.cache",
    "repro.sweep.runner",
    "repro.sweep.spec",
    "repro.synth",
    "repro.synth.corpus",
    "repro.synth.diffcheck",
    "repro.synth.families",
    "repro.synth.rng",
    "repro.synth.scenarios",
]


@pytest.mark.parametrize("module_name", DOCTEST_MODULES)
def test_public_api_doctests(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(module)
    assert results.failed == 0
    assert results.attempted > 0


class TestNoiseStatistics:
    def test_hash01_is_roughly_uniform(self):
        samples = [_hash01("u", i) for i in range(4000)]
        mean = statistics.fmean(samples)
        assert 0.47 < mean < 0.53
        assert min(samples) >= 0.0 and max(samples) < 1.0
        # spread across deciles
        deciles = [0] * 10
        for s in samples:
            deciles[int(s * 10)] += 1
        assert min(deciles) > 4000 / 10 * 0.7

    def test_signed_is_centered(self):
        samples = [_signed("s", i) for i in range(4000)]
        assert abs(statistics.fmean(samples)) < 0.05
        assert all(-1.0 <= s < 1.0 for s in samples)

    def test_conflict_rate_matches_probability(self):
        """Across many distinct kernels, the severe-conflict fraction
        should track conflict_probability."""
        costs = SimCosts(conflict_probability=0.05)
        sim = KernelSimulator(M2090, costs=costs)
        severe = 0
        total = 300
        lo, _ = costs.conflict_scale
        for i in range(total):
            g = linear_pipeline_graph(f"noise{i}", stages=2, rate=64,
                                      work=50.0)
            members = [n.node_id for n in g.nodes]
            m = sim.measure(g, members, KernelConfig(1, 2, 64))
            overlap = min(m.t_comp, m.t_dt)
            if overlap > 0 and m.conflict_penalty >= lo * overlap * 0.99:
                severe += 1
        assert 0.01 <= severe / total <= 0.12  # ~5% +/- sampling noise

    def test_instruction_mix_is_stable_per_filter(self):
        sim = KernelSimulator(M2090)
        a = sim.firing_time_ns("alpha", 100.0)
        b = sim.firing_time_ns("alpha", 100.0)
        c = sim.firing_time_ns("beta", 100.0)
        assert a == b
        assert a != c

    def test_mix_spread_bounded(self):
        costs = SimCosts()
        sim = KernelSimulator(M2090, costs=costs)
        base = 100.0 * costs.op_ns_at_1ghz * M2090.compute_scale
        for i in range(200):
            t = sim.firing_time_ns(f"f{i}", 100.0) - costs.firing_overhead_ns
            assert abs(t - base) <= costs.instruction_mix_spread * base + 1e-9
