"""Property/fuzz layer for batch population scoring.

The batch evaluator's contract is the kernel's, lifted to populations:
*bit-exactness* against the interpreted evaluator
(:meth:`MappingProblem.tmax`), not closeness.  Float sums do not
commute, so the vectorized path must replicate the interpreted fold
order exactly — these tests pin that across the synthetic corpus x the
full topology set (g2/g4 plus every named platform), across adversarial
random heterogeneous trees with full-mantissa byte counts (where any
reordering shows up in the last ulp), and between the NumPy path and
the pure-python fallback.

The mutation test at the bottom guards the one shared accumulation
helper (:func:`repro.mapping.kernel.canonical_gpu_fold`): replacing it
with a reversed-order fold must make the delta scorer *and* the batch
fallback visibly diverge from the interpreted evaluator — if that test
ever stops failing under mutation, the fold order is no longer
load-bearing and the exactness suite has lost its teeth.

``TestBatchExactness`` + ``TestMoveGeneration`` + ``TestCanonicalFold``
form the fast subset that ``make batch-check`` runs.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from test_kernel import _corpus_problems
from test_platforms import random_hetero_topology, random_problem

import repro.mapping.batch as batch_mod
import repro.mapping.kernel as kernel_mod
from repro.mapping.batch import (
    BatchEvaluator,
    apply_moves,
    kick_population,
    sample_moves,
    _np,
)
from repro.mapping.kernel import DeltaEvaluator, EvalKernel
from repro.mapping.problem import MappingProblem
from repro.gpu.topology import default_topology
from repro.synth.rng import SynthRng

needs_numpy = pytest.mark.skipif(_np is None, reason="NumPy unavailable")


@pytest.fixture(scope="module")
def corpus_problems():
    return _corpus_problems()


def _random_population(problem, rng, count):
    return [
        [rng.randrange(problem.num_gpus)
         for _ in range((problem.num_partitions))]
        for _ in range(count)
    ]


# ----------------------------------------------------------------------
# exactness
# ----------------------------------------------------------------------
class TestBatchExactness:
    def test_corpus_bit_identical(self, corpus_problems):
        """Corpus x topology set: batch == the interpreted loop, bitwise."""
        rng = random.Random(0xBA7C4)
        for label, problem in corpus_problems:
            evaluator = BatchEvaluator(EvalKernel(problem))
            pop = _random_population(problem, rng, 17)
            assert evaluator.batch_tmax(pop) == [
                problem.tmax(a) for a in pop
            ], label

    def test_adversarial_trees_bit_identical(self):
        """Random hetero trees, full-mantissa floats: still bitwise.

        ``random_problem`` draws times/bytes with ``rng.uniform`` —
        sums of those round, so any accumulation-order deviation in the
        vectorized path lands in the last ulp and fails this test.
        """
        rng = random.Random(0xF107)
        for seed in range(40):
            topology = random_hetero_topology(seed)
            problem = random_problem(topology, seed)
            evaluator = BatchEvaluator(EvalKernel(problem))
            pop = _random_population(problem, rng, 9)
            assert evaluator.batch_tmax(pop) == [
                problem.tmax(a) for a in pop
            ], seed

    def test_fallback_matches_numpy(self, corpus_problems):
        rng = random.Random(0xFA11)
        for label, problem in corpus_problems[::5]:
            kernel = EvalKernel(problem)
            vec = BatchEvaluator(kernel)
            plain = BatchEvaluator(kernel, use_numpy=False)
            assert not plain.vectorized
            pop = _random_population(problem, rng, 7)
            assert vec.batch_tmax(pop) == plain.batch_tmax(pop), label

    def test_empty_population(self, corpus_problems):
        _label, problem = corpus_problems[0]
        kernel = EvalKernel(problem)
        for evaluator in (
            BatchEvaluator(kernel), BatchEvaluator(kernel, use_numpy=False)
        ):
            assert evaluator.batch_tmax([]) == []

    def test_singleton_population(self, corpus_problems):
        for label, problem in corpus_problems[:3]:
            evaluator = BatchEvaluator(EvalKernel(problem))
            assignment = [0] * problem.num_partitions
            assert evaluator.batch_tmax([assignment]) == [
                problem.tmax(assignment)
            ], label

    def test_population_sizes_dont_interact(self):
        """Per-N cached buffers: interleaving sizes changes nothing."""
        problem = random_problem(random_hetero_topology(3), 3)
        evaluator = BatchEvaluator(EvalKernel(problem))
        rng = random.Random(5)
        pops = {n: _random_population(problem, rng, n) for n in (1, 4, 33)}
        want = {
            n: [problem.tmax(a) for a in pop] for n, pop in pops.items()
        }
        for n in (33, 1, 4, 33, 1):  # revisit sizes in scrambled order
            assert evaluator.batch_tmax(pops[n]) == want[n], n

    @needs_numpy
    def test_ndarray_input_accepted(self):
        problem = random_problem(random_hetero_topology(7), 7)
        evaluator = BatchEvaluator(EvalKernel(problem))
        pop = _random_population(problem, random.Random(7), 6)
        matrix = _np.asarray(pop, dtype=_np.int64)
        assert evaluator.batch_tmax(matrix) == evaluator.batch_tmax(pop)

    def test_shape_errors(self):
        problem = random_problem(random_hetero_topology(1), 1)
        kernel = EvalKernel(problem)
        for evaluator in (
            BatchEvaluator(kernel), BatchEvaluator(kernel, use_numpy=False)
        ):
            bad_width = [[0] * (problem.num_partitions + 1)]
            with pytest.raises(ValueError, match="num_partitions"):
                evaluator.batch_tmax(bad_width)

    def test_gpu_range_errors(self):
        problem = random_problem(random_hetero_topology(2), 2)
        kernel = EvalKernel(problem)
        for evaluator in (
            BatchEvaluator(kernel), BatchEvaluator(kernel, use_numpy=False)
        ):
            bad = [[problem.num_gpus] * problem.num_partitions]
            with pytest.raises(ValueError, match="out of range"):
                evaluator.batch_tmax(bad)
            neg = [[-1] * problem.num_partitions]
            with pytest.raises(ValueError, match="out of range"):
                evaluator.batch_tmax(neg)

    @needs_numpy
    def test_use_numpy_flag(self):
        problem = random_problem(random_hetero_topology(4), 4)
        kernel = EvalKernel(problem)
        assert BatchEvaluator(kernel, use_numpy=True).vectorized
        assert BatchEvaluator(kernel).vectorized


# ----------------------------------------------------------------------
# hypothesis fuzz: arbitrary populations on a fixed adversarial problem
# ----------------------------------------------------------------------
_FUZZ_PROBLEM = random_problem(random_hetero_topology(11), 11)
_FUZZ_KERNEL = EvalKernel(_FUZZ_PROBLEM)
_FUZZ_EVALUATORS = (
    BatchEvaluator(_FUZZ_KERNEL),
    BatchEvaluator(_FUZZ_KERNEL, use_numpy=False),
)


class TestBatchFuzz:
    @given(
        pop=st.lists(
            st.lists(
                st.integers(0, _FUZZ_PROBLEM.num_gpus - 1),
                min_size=_FUZZ_PROBLEM.num_partitions,
                max_size=_FUZZ_PROBLEM.num_partitions,
            ),
            min_size=0, max_size=12,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_any_population_bit_identical(self, pop):
        want = [_FUZZ_PROBLEM.tmax(a) for a in pop]
        for evaluator in _FUZZ_EVALUATORS:
            assert evaluator.batch_tmax(pop) == want


# ----------------------------------------------------------------------
# population move generation
# ----------------------------------------------------------------------
class TestMoveGeneration:
    def test_sample_moves_deterministic_and_valid(self):
        pop = [[0, 1, 2, 0], [2, 2, 1, 0], [0, 0, 0, 0]]
        a = sample_moves(pop, 3, SynthRng("t|mv"))
        b = sample_moves(pop, 3, SynthRng("t|mv"))
        assert a == b
        for c, move in enumerate(a):
            assert move is not None
            pid, gpu = move
            assert 0 <= pid < 4 and 0 <= gpu < 3
            assert gpu != pop[c][pid]  # always a real move

    def test_sample_moves_respects_tabu(self):
        pop = [[0, 1]] * 8
        tabu = [{0, 1}, set()] * 4  # candidate 0/2/4/6 fully barred
        moves = sample_moves(pop, 2, SynthRng("t|tabu"), tabu=tabu)
        for c, move in enumerate(moves):
            if c % 2 == 0:
                assert move is None  # every pid barred -> bounded give-up
            elif move is not None:
                assert move[0] not in tabu[c]

    def test_sample_moves_degenerate(self):
        assert sample_moves([[]], 4, SynthRng("t|d1")) == [None]
        assert sample_moves([[0, 0]], 1, SynthRng("t|d2")) == [None]

    def test_apply_moves_copies(self):
        pop = [[0, 0], [1, 1]]
        out = apply_moves(pop, [(0, 1), None])
        assert out == [[1, 0], [1, 1]]
        assert pop == [[0, 0], [1, 1]]  # inputs untouched
        assert out[1] is not pop[1]

    def test_kick_population_only_and_deterministic(self):
        pop = [[0] * 6, [1] * 6, [0] * 6]
        a = kick_population(pop, 4, SynthRng("t|k"), strength=3, only=[1])
        b = kick_population(pop, 4, SynthRng("t|k"), strength=3, only=[1])
        assert a == b
        assert a[0] == pop[0] and a[2] == pop[2]  # untouched candidates
        assert a[1] != pop[1]  # strength-3 kick away from a uniform row
        assert all(0 <= g < 4 for g in a[1])

    def test_kick_population_scores_stay_exact(self):
        problem = random_problem(random_hetero_topology(9), 9)
        evaluator = BatchEvaluator(EvalKernel(problem))
        pop = _random_population(problem, random.Random(9), 10)
        kicked = kick_population(
            pop, problem.num_gpus, SynthRng("t|ks"), strength=2
        )
        assert evaluator.batch_tmax(kicked) == [
            problem.tmax(a) for a in kicked
        ]


# ----------------------------------------------------------------------
# canonical-fold mutation guard
# ----------------------------------------------------------------------
def _reversed_fold(col, pids, start=0.0):
    """The mutant: same terms, opposite order (and start added last)."""
    total = 0.0
    for pid in reversed(list(pids)):
        total += col(pid)
    return total + start


def _probe_divergence(problem):
    """Max |score_move - interpreted| over a move sweep."""
    kernel = EvalKernel(problem)
    assignment = [pid % problem.num_gpus
                  for pid in range(problem.num_partitions)]
    state = DeltaEvaluator(kernel, assignment)
    worst = 0.0
    for pid in range(problem.num_partitions):
        for gpu in range(problem.num_gpus):
            if gpu == assignment[pid]:
                continue
            probed = state.score_move(pid, gpu)
            trial = list(assignment)
            trial[pid] = gpu
            worst = max(worst, abs(probed - problem.tmax(trial)))
    return worst


class TestCanonicalFold:
    #: compute times whose left fold rounds differently in reverse —
    #: both over the full list and over its 4-element prefix (the
    #: per-GPU membership the batch fallback folds), so either scoring
    #: path exposes a reordered fold in the last ulp
    _TIMES = [0.786, 0.3103, 0.4818, 0.5875, 0.909, 0.5096]

    def _problem(self):
        return MappingProblem(
            times=list(self._TIMES), edges={},
            host_io=[(0.0, 0.0)] * len(self._TIMES),
            topology=default_topology(2),
        )

    def test_times_are_order_sensitive(self):
        # the fixture must actually expose fold order, or the mutation
        # test below would vacuously pass
        assert sum(self._TIMES) != _reversed_fold(
            self._TIMES.__getitem__, range(len(self._TIMES))
        )
        assert sum(self._TIMES[:4]) != _reversed_fold(
            self._TIMES.__getitem__, range(4)
        )

    def test_score_move_exact_with_canonical_fold(self):
        assert _probe_divergence(self._problem()) == 0.0
        for seed in range(10):
            problem = random_problem(random_hetero_topology(seed), seed)
            if problem.num_gpus >= 2:
                assert _probe_divergence(problem) == 0.0, seed

    def test_score_move_mutant_fold_diverges(self, monkeypatch):
        """Reversing the shared fold must break delta-scoring exactness."""
        monkeypatch.setattr(
            kernel_mod, "canonical_gpu_fold", _reversed_fold
        )
        assert _probe_divergence(self._problem()) > 0.0

    def test_batch_fallback_mutant_fold_diverges(self, monkeypatch):
        """The pure-python batch path shares the same helper."""
        problem = self._problem()
        want = [problem.tmax([0, 0, 0, 0, 1, 1])]
        monkeypatch.setattr(
            batch_mod, "canonical_gpu_fold", _reversed_fold
        )
        mutant = BatchEvaluator(EvalKernel(problem), use_numpy=False)
        assert mutant.batch_tmax([[0, 0, 0, 0, 1, 1]]) != want
