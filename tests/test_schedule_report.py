"""Tests for schedule utilities and the compiler report."""

import pytest

from repro.apps.registry import build_app
from repro.cli import main as cli_main
from repro.flow import map_stream_graph
from repro.graph.builder import GraphBuilder, linear_pipeline_graph
from repro.graph.filters import FilterRole
from repro.graph.schedule import (
    executions_for_elements,
    schedule_string,
    steady_state_schedule,
)
from repro.perf.report import flow_report


class TestSchedule:
    def test_topological_order(self):
        g = linear_pipeline_graph("s", stages=2, rate=8)
        names = [name for name, _ in steady_state_schedule(g)]
        assert names == ["src", "stage0", "stage1", "snk"]

    def test_firing_annotations(self):
        b = GraphBuilder("fire")
        src = b.filter("src", pop=0, push=6, role=FilterRole.SOURCE)
        f = b.filter("f", pop=2, push=2)
        t = b.filter("t", pop=3, push=0, role=FilterRole.SINK)
        b.connect(src, f)
        b.connect(f, t)
        g = b.build()
        text = schedule_string(g)
        assert "3(f)" in text and "2(t)" in text

    def test_subset_schedule(self):
        g = linear_pipeline_graph("s", stages=3, rate=8)
        sub = [g.node_by_name("stage1").node_id]
        assert schedule_string(g, sub) == "stage1"

    def test_executions_for_elements(self):
        g = linear_pipeline_graph("s", stages=1, rate=8)
        assert executions_for_elements(g, 8) == 1
        assert executions_for_elements(g, 9) == 2

    def test_executions_requires_input(self):
        b = GraphBuilder("noin")
        s = b.filter("gen", pop=0, push=2, role=FilterRole.SOURCE)
        t = b.filter("t", pop=2, push=0, role=FilterRole.SINK)
        b.connect(s, t)
        g = b.build()
        # sources still consume host input in our model, so craft a graph
        # reporting zero input: impossible via builder; monkeypatch io
        g.primary_input_elems = lambda nid: 0  # type: ignore
        with pytest.raises(ValueError):
            executions_for_elements(g, 4)


class TestFlowReport:
    def test_report_covers_all_partitions(self):
        result = map_stream_graph(build_app("FFT", 32), num_gpus=2)
        text = flow_report(result)
        assert f"partitions: {result.num_partitions}" in text
        for pid in range(result.num_partitions):
            assert f"P{pid}" in text
        assert "schedule:" in text
        assert "throughput" in text

    def test_report_flags_bottleneck(self):
        result = map_stream_graph(build_app("DCT", 10), num_gpus=2)
        text = flow_report(result)
        assert result.mapping.bottleneck in text

    def test_cli_report_flag(self, capsys):
        assert cli_main(
            ["--app", "MatMul2", "--n", "2", "--gpus", "2", "--report"]
        ) == 0
        out = capsys.readouterr().out
        assert "=== mapping report:" in out
        assert "schedule:" in out
