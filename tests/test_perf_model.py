"""Tests for the analytic performance model and parameter search."""

import pytest

from repro.graph.builder import GraphBuilder, linear_pipeline_graph
from repro.graph.filters import FilterRole
from repro.gpu.kernel import KernelConfig
from repro.gpu.memory import partition_memory
from repro.gpu.simulator import KernelSimulator
from repro.gpu.specs import C2070, M2090
from repro.perf.model import Estimate, ModelParams, compute_time, estimate_kernel
from repro.perf.params import candidate_s, candidate_w, optimize_kernel_params
from repro.perf.profiling import profile_graph


def _graph(rate=32, stages=3, work=40.0):
    return linear_pipeline_graph("perf", stages=stages, rate=rate, work=work)


def _fixture(rate=32, stages=3, work=40.0, spec=M2090):
    g = _graph(rate, stages, work)
    sim = KernelSimulator(spec)
    prof = profile_graph(g, sim)
    members = [n.node_id for n in g.nodes]
    mem = partition_memory(g, members)
    return g, prof, members, mem


class TestComputeTime:
    def test_single_thread_sums_profile(self):
        g, prof, members, _ = _fixture()
        total = compute_time(g, members, prof, s=1)
        expected = sum(prof[nid] * g.nodes[nid].firing for nid in members)
        assert total == pytest.approx(expected)

    def test_s_divides_by_min_firing(self):
        # filter fires 8x: S=4 quarters its time, S=16 caps at 8
        b = GraphBuilder("fires")
        src = b.filter("s", pop=0, push=8, role=FilterRole.SOURCE)
        f = b.filter("f", pop=1, push=1, work=80.0)
        t = b.filter("t", pop=8, push=0, role=FilterRole.SINK)
        b.connect(src, f, src_push=8)
        b.connect(f, t, src_push=1, dst_pop=8)
        g = b.build()
        sim = KernelSimulator(M2090)
        prof = profile_graph(g, sim)
        fid = g.node_by_name("f").node_id
        t1 = compute_time(g, [fid], prof, s=1)
        t4 = compute_time(g, [fid], prof, s=4)
        t16 = compute_time(g, [fid], prof, s=16)
        assert t4 == pytest.approx(t1 / 4)
        assert t16 == pytest.approx(t1 / 8)  # min(f_i, S) = 8

    def test_stateful_filters_ignore_s(self):
        b = GraphBuilder("state")
        src = b.filter("s", pop=0, push=8, role=FilterRole.SOURCE)
        f = b.filter("f", pop=1, push=1, work=80.0, stateful=True)
        t = b.filter("t", pop=8, push=0, role=FilterRole.SINK)
        b.connect(src, f, src_push=8)
        b.connect(f, t, src_push=1, dst_pop=8)
        g = b.build()
        prof = profile_graph(g, KernelSimulator(M2090))
        fid = g.node_by_name("f").node_id
        assert compute_time(g, [fid], prof, s=8) == pytest.approx(
            compute_time(g, [fid], prof, s=1)
        )


class TestEstimateKernel:
    def test_components_follow_formulas(self):
        g, prof, members, mem = _fixture()
        params = ModelParams()
        cfg = KernelConfig(2, 4, 64)
        est = estimate_kernel(g, members, prof, cfg, mem, params)
        d = cfg.w * (mem.io_bytes // g.elem_bytes)
        assert est.t_dt == pytest.approx(params.c1 * d / cfg.f)
        assert est.t_db == pytest.approx(params.c2 * d / cfg.total_threads)
        assert est.t_exec == pytest.approx(
            max(est.t_comp, est.t_dt) + est.t_db
        )
        assert est.per_execution == pytest.approx(est.t_exec / cfg.w)

    def test_c_constants_rescale_with_bandwidth(self):
        g, prof, members, mem = _fixture(spec=C2070)
        cfg = KernelConfig(1, 1, 32)
        m2090 = estimate_kernel(g, members, prof, cfg, mem, ModelParams(), spec=M2090)
        c2070 = estimate_kernel(g, members, prof, cfg, mem, ModelParams(), spec=C2070)
        assert c2070.t_dt > m2090.t_dt  # less bandwidth, slower transfers

    def test_spill_term(self):
        g, prof, members, mem = _fixture()
        cfg = KernelConfig(1, 2, 32)
        none = estimate_kernel(g, members, prof, cfg, mem, ModelParams())
        spilled = estimate_kernel(
            g, members, prof, cfg, mem, ModelParams(), spilled_bytes=4000
        )
        assert spilled.t_exec > none.t_exec

    def test_boundedness_classification(self):
        g, prof, members, mem = _fixture(work=4000.0)
        cfg = KernelConfig(1, 1, 256)
        est = estimate_kernel(g, members, prof, cfg, mem, ModelParams())
        assert est.is_compute_bound
        g2, prof2, members2, mem2 = _fixture(rate=512, work=0.0)
        est2 = estimate_kernel(
            g2, members2, prof2, KernelConfig(1, 1, 32), mem2, ModelParams()
        )
        assert not est2.is_compute_bound


class TestCandidates:
    def test_candidate_s_powers_of_two(self):
        g, _, members, _ = _fixture(rate=32)
        # stages fire once (rate matches), so S candidates collapse to [1]
        assert candidate_s(g, members, 1024) == [1]

    def test_candidate_w_respects_smem(self):
        g, _, members, mem = _fixture(rate=16)
        values, spilled = candidate_w(mem, M2090)
        assert spilled == 0
        assert all(mem.smem_for(w) <= M2090.shared_mem_bytes for w in values)
        assert values[-1] == mem.max_executions(M2090.shared_mem_bytes)

    def test_candidate_w_spill_mode(self):
        g, _, members, mem = _fixture(rate=8192, stages=4)
        values, spilled = candidate_w(mem, M2090)
        assert values == [1]
        assert spilled > 0


class TestOptimizeParams:
    def test_result_is_feasible(self):
        g, prof, members, mem = _fixture()
        cfg, est, spilled = optimize_kernel_params(g, members, prof)
        assert cfg.total_threads <= M2090.max_threads_per_block
        assert mem.smem_for(cfg.w) <= M2090.shared_mem_bytes
        assert spilled == 0

    def test_optimum_not_worse_than_default(self):
        g, prof, members, _ = _fixture()
        cfg, est, _ = optimize_kernel_params(g, members, prof)
        base = estimate_kernel(
            g, members, prof, KernelConfig(1, 1, 32),
            partition_memory(g, members), ModelParams(),
        )
        assert est.per_execution <= base.per_execution + 1e-9

    def test_io_heavy_partitions_get_more_dt_threads(self):
        g1, prof1, m1, _ = _fixture(rate=512, work=0.5)
        io_cfg, _, _ = optimize_kernel_params(g1, m1, prof1)
        g2, prof2, m2, _ = _fixture(rate=8, work=4000.0)
        comp_cfg, _, _ = optimize_kernel_params(g2, m2, prof2)
        assert io_cfg.f >= comp_cfg.f

    def test_empty_partition_rejected(self):
        g, prof, _, _ = _fixture()
        with pytest.raises(ValueError):
            optimize_kernel_params(g, [], prof)
