"""The async mapping service: dedup, queueing, deadlines, wire format.

The headline pin is the acceptance round trip — 8 concurrent duplicate
requests cost exactly one solver invocation and return identical
results — plus the satellite guarantees: the work queue drains in
priority-then-FIFO order, the job store dedups across service restarts,
and the shared StageCache stays consistent under concurrent writers.
"""

import io
import json
import threading
import time

import pytest

from repro.cli import main as cli_main
from repro.service import (
    Job,
    JobStore,
    MappingRequest,
    MappingService,
    ServiceError,
    WorkQueue,
    parse_request_line,
    request_from_json,
    request_key,
    request_to_json,
    serve_stream,
)
from repro.service.jobs import DONE, FAILED, QUEUED, RUNNING
from repro.service.queue import QueueClosed
from repro.sweep.cache import StageCache


# ----------------------------------------------------------------------
# work queue
# ----------------------------------------------------------------------
class TestWorkQueue:
    def test_fifo_within_a_priority(self):
        q = WorkQueue()
        for item in "abc":
            q.put(item)
        assert [q.get(), q.get(), q.get()] == ["a", "b", "c"]

    def test_lower_priority_value_drains_sooner(self):
        q = WorkQueue()
        q.put("background", priority=10)
        q.put("normal")
        q.put("urgent", priority=-5)
        assert [q.get(), q.get(), q.get()] == ["urgent", "normal", "background"]

    def test_get_timeout_returns_none(self):
        assert WorkQueue().get(timeout=0.01) is None

    def test_close_wakes_and_drains(self):
        q = WorkQueue()
        q.put("last")
        q.close()
        assert q.get() == "last"
        assert q.get() is None
        with pytest.raises(QueueClosed):
            q.put("more")

    def test_len_tracks_pending(self):
        q = WorkQueue()
        assert len(q) == 0
        q.put("x")
        assert len(q) == 1

    def test_drain_empties_in_priority_order(self):
        q = WorkQueue()
        q.put("normal")
        q.put("urgent", priority=-1)
        assert q.drain() == ["urgent", "normal"]
        assert len(q) == 0 and q.drain() == []

    def test_get_timeout_is_a_deadline_not_per_wakeup(self):
        """Regression: ``get(timeout=...)`` used to re-arm the FULL
        timeout on every notify, so under consumer contention a "0.4 s"
        get could block for many multiples of that.  Two consumers race
        one producer, compressed into a deterministic steal: the
        producer puts an item and the racing consumer takes it back
        *while still holding the condition lock* (it is reentrant), so
        the victim is notified but always wakes to an empty queue —
        exactly the lost-race wakeup the deadline must survive."""
        q = WorkQueue()
        outcome = {}

        def victim():
            start = time.monotonic()
            outcome["item"] = q.get(timeout=0.4)
            outcome["elapsed"] = time.monotonic() - start

        consumer = threading.Thread(target=victim)
        consumer.start()
        # >= 3x the victim's timeout of contention wakeups
        for _ in range(30):
            if not consumer.is_alive():
                break
            with q._cond:  # producer + racing consumer, atomically
                q.put("stolen")
                assert q.get() == "stolen"
            time.sleep(0.05)
        consumer.join(timeout=5)
        assert not consumer.is_alive(), "get() blocked past its timeout"
        assert outcome["item"] is None
        # pre-fix this is >= the whole 1.5 s contention window
        assert outcome["elapsed"] < 1.2


# ----------------------------------------------------------------------
# job store
# ----------------------------------------------------------------------
class TestJobStore:
    def test_update_unknown_field_raises(self):
        store = JobStore()
        store.put(Job(key="k", request={}))
        with pytest.raises(AttributeError):
            store.update("k", verdict="guilty")

    def test_persistence_keeps_only_finished_jobs(self, tmp_path):
        path = str(tmp_path / "store")
        store = JobStore(path)
        store.put(Job(key="done1", request={"app": "A"}, state=DONE,
                      result={"tmax": 1.0}, solves=1))
        store.put(Job(key="fail1", request={"app": "B"}, state=FAILED,
                      error="boom"))
        store.put(Job(key="mid1", request={"app": "C"}, state=RUNNING))
        store.put(Job(key="q1", request={"app": "D"}, state=QUEUED))

        revived = JobStore(path)
        assert {job.key for job in revived.jobs()} == {"done1", "fail1"}
        assert revived.get("done1").result == {"tmax": 1.0}
        assert revived.get("fail1").error == "boom"

    def test_torn_file_is_skipped(self, tmp_path):
        path = str(tmp_path / "store")
        JobStore(path)  # creates the directory
        (tmp_path / "store" / "bad.job.json").write_text("{not json")
        assert len(JobStore(path)) == 0

    def test_purge_empties_memory_and_disk(self, tmp_path):
        path = str(tmp_path / "store")
        store = JobStore(path)
        store.put(Job(key="k", request={}, state=DONE, result={}))
        assert store.purge() == 1
        assert len(store) == 0
        assert len(JobStore(path)) == 0


# ----------------------------------------------------------------------
# request canonicalization + wire format
# ----------------------------------------------------------------------
class TestRequestKeys:
    def test_scheduling_metadata_never_enters_the_key(self):
        base = MappingRequest(app="Bitonic", n=8, num_gpus=2)
        noisy = MappingRequest(app="Bitonic", n=8, num_gpus=2, priority=-3,
                               deadline_s=1.5, tag="req-0042")
        assert request_key(base) == request_key(noisy)

    def test_solver_config_and_machine_do_enter_the_key(self):
        base = MappingRequest(app="Bitonic", n=8, num_gpus=2)
        assert request_key(base) != request_key(
            MappingRequest(app="Bitonic", n=8, num_gpus=4))
        assert request_key(base) != request_key(
            MappingRequest(app="Bitonic", n=8, num_gpus=2, budget="ample"))
        assert request_key(base) != request_key(
            MappingRequest(app="Bitonic", n=8, num_gpus=2, mapper="ilp"))
        assert request_key(base) != request_key(
            MappingRequest(app="Bitonic", n=8, platform="two-island"))

    def test_graph_identity_is_the_fingerprint(self):
        a = MappingRequest(app="Bitonic", n=8, num_gpus=2)
        b = MappingRequest(app="Bitonic", n=16, num_gpus=2)
        assert request_key(a) != request_key(b)

    def test_roundtrip_and_unknown_field_rejection(self):
        req = MappingRequest(app="DES", n=4, budget="small", tag="x")
        assert request_from_json(request_to_json(req)) == req
        with pytest.raises(ValueError, match="unknown request field"):
            request_from_json({"app": "DES", "n": 4, "gpu": 2})
        with pytest.raises(ValueError, match="bad request line"):
            parse_request_line("{oops")
        with pytest.raises(ValueError, match="JSON object"):
            parse_request_line("[1, 2]")

    def test_validate_rejects_unknown_knobs(self):
        with pytest.raises(ValueError, match="unknown app"):
            MappingRequest(app="NoSuchApp", n=4).validate()
        with pytest.raises(ValueError, match="unknown budget tier"):
            MappingRequest(app="DES", n=4, budget="lavish").validate()
        with pytest.raises(ValueError, match="unknown platform"):
            MappingRequest(app="DES", n=4, platform="wat").validate()


# ----------------------------------------------------------------------
# the service, with an instrumented solver
# ----------------------------------------------------------------------
class _CountingSolver:
    """Stub solve_fn: counts invocations, optionally blocks on an event."""

    def __init__(self, gate=None, fail=False):
        self.calls = []
        self.lock = threading.Lock()
        self.gate = gate
        self.fail = fail

    def __call__(self, request, tier, cache):
        if self.gate is not None:
            assert self.gate.wait(timeout=30.0)
        with self.lock:
            self.calls.append((request.app, request.num_gpus, tier))
        if self.fail:
            raise RuntimeError("injected solver failure")
        return {"app": request.app, "n": request.n, "budget": tier}


class TestServiceDedup:
    def test_eight_concurrent_duplicates_cost_one_solve(self):
        """The acceptance pin: N duplicates -> 1 invocation, identical
        results.  The gate holds the solve until all 8 are submitted, so
        every duplicate exercises the *in-flight* path."""
        gate = threading.Event()
        solver = _CountingSolver(gate=gate)
        with MappingService(workers=2, solve_fn=solver) as service:
            request = MappingRequest(app="Bitonic", n=8, num_gpus=2)
            tickets = [service.submit(request) for _ in range(8)]
            gate.set()
            results = [ticket.result() for ticket in tickets]
        assert len(solver.calls) == 1
        assert all(result == results[0] for result in results)
        stats = service.stats()
        assert stats.submitted == 8
        assert stats.solved == 1
        assert stats.dedup_inflight == 7
        assert stats.dedup_completed == 0
        assert [t.dedup for t in tickets] == [None] + ["inflight"] * 7

    def test_completed_jobs_dedup_from_the_store(self):
        solver = _CountingSolver()
        with MappingService(solve_fn=solver) as service:
            request = MappingRequest(app="Bitonic", n=8, num_gpus=2)
            first = service.submit(request)
            first.result()  # wait for completion
            again = service.submit(request)
            assert again.result() == first.result()
        assert len(solver.calls) == 1
        assert service.stats().dedup_completed == 1
        assert again.dedup == "completed"

    def test_dedup_survives_a_service_restart(self, tmp_path):
        store_dir = str(tmp_path / "store")
        request = MappingRequest(app="Bitonic", n=8, num_gpus=2)
        solver = _CountingSolver()
        with MappingService(store=JobStore(store_dir),
                            solve_fn=solver) as service:
            service.submit(request).result()
        assert len(solver.calls) == 1

        second_solver = _CountingSolver()
        with MappingService(store=JobStore(store_dir),
                            solve_fn=second_solver) as revived:
            ticket = revived.submit(request)
            ticket.result()
        assert second_solver.calls == []
        assert ticket.dedup == "completed"

    def test_failed_jobs_do_not_poison_the_key(self):
        """A transient failure (worker error, expired deadline) must be
        retried on the next submission, not replayed from the store."""
        solver = _CountingSolver(fail=True)
        with MappingService(solve_fn=solver) as service:
            request = MappingRequest(app="Bitonic", n=8, num_gpus=2)
            with pytest.raises(ServiceError, match="injected"):
                service.submit(request).result()
            solver.fail = False  # the transient condition clears
            retried = service.submit(request)
            assert retried.dedup is None  # a fresh solve, not a replay
            assert retried.result()["budget"] == "default"
        assert len(solver.calls) == 2

    def test_downgraded_results_are_not_canonical(self):
        """A deadline-downgraded solve must not serve later full-budget
        duplicates from the store: the key promises the *requested*
        budget's answer."""
        solver = _CountingSolver()
        with MappingService(workers=1, solve_fn=solver) as service:
            rushed = MappingRequest(app="Bitonic", n=8, num_gpus=2,
                                    budget="ample", deadline_s=2.5)
            service.submit(rushed).result()
            downgraded_tier = solver.calls[0][2]
            assert downgraded_tier != "ample"
            patient = MappingRequest(app="Bitonic", n=8, num_gpus=2,
                                     budget="ample")
            ticket = service.submit(patient)
            assert ticket.dedup is None  # re-solved, not replayed
            assert ticket.result()["budget"] == "ample"
        assert [tier for _, _, tier in solver.calls] == [
            downgraded_tier, "ample",
        ]

    def test_downgrade_marker_refuses_even_a_spoofed_budget_field(self):
        """The dedup guard must be *structural* (Job.downgraded_from),
        not trust the result payload: a solve_fn that echoes the
        requested tier instead of the effective one used to make the
        store serve a downgraded answer to a deadline-free duplicate."""

        class _SpoofingSolver(_CountingSolver):
            def __call__(self, request, tier, cache):
                payload = super().__call__(request, tier, cache)
                # claim the *requested* tier, whatever actually ran
                payload["budget"] = request.budget
                return payload

        solver = _SpoofingSolver()
        with MappingService(workers=1, solve_fn=solver) as service:
            rushed = MappingRequest(app="Bitonic", n=8, num_gpus=2,
                                    budget="ample", deadline_s=2.5)
            service.submit(rushed).result()
            assert solver.calls[0][2] != "ample"  # it was downgraded
            patient = MappingRequest(app="Bitonic", n=8, num_gpus=2,
                                     budget="ample")
            ticket = service.submit(patient)
            assert ticket.dedup is None  # refused: marker, not payload
            ticket.result()
        assert len(solver.calls) == 2
        assert solver.calls[1][2] == "ample"

    def test_downgraded_result_is_canonical_under_the_effective_tier(self):
        """The downgraded answer is full quality *for the tier that
        actually ran*: it is filed under that tier's own key, so an
        honest effective-tier request dedups instead of re-solving."""
        solver = _CountingSolver()
        with MappingService(workers=1, solve_fn=solver) as service:
            rushed = MappingRequest(app="Bitonic", n=8, num_gpus=2,
                                    budget="ample", deadline_s=2.5)
            service.submit(rushed).result()
            effective_tier = solver.calls[0][2]
            assert effective_tier != "ample"
            honest = MappingRequest(app="Bitonic", n=8, num_gpus=2,
                                    budget=effective_tier)
            ticket = service.submit(honest)
            assert ticket.dedup == "completed"
            assert ticket.result()["budget"] == effective_tier
        assert len(solver.calls) == 1  # the copy answered, no re-solve

    def test_downgrade_marker_survives_a_restart(self, tmp_path):
        """The poisoning was *persistent* — the marker must be too."""
        store_dir = str(tmp_path / "store")
        solver = _CountingSolver()
        with MappingService(store=JobStore(store_dir), workers=1,
                            solve_fn=solver) as service:
            rushed = MappingRequest(app="Bitonic", n=8, num_gpus=2,
                                    budget="ample", deadline_s=2.5)
            service.submit(rushed).result()
        assert solver.calls[0][2] != "ample"

        revived_solver = _CountingSolver()
        with MappingService(store=JobStore(store_dir), workers=1,
                            solve_fn=revived_solver) as revived:
            patient = MappingRequest(app="Bitonic", n=8, num_gpus=2,
                                     budget="ample")
            ticket = revived.submit(patient)
            assert ticket.dedup is None  # marker refused the replay
            assert ticket.result()["budget"] == "ample"
        assert [tier for _, _, tier in revived_solver.calls] == ["ample"]

    def test_distinct_requests_each_solve(self):
        solver = _CountingSolver()
        with MappingService(workers=2, solve_fn=solver) as service:
            tickets = [
                service.submit(MappingRequest(app="Bitonic", n=8, num_gpus=g))
                for g in (1, 2, 4)
            ]
            for ticket in tickets:
                ticket.result()
        assert len(solver.calls) == 3
        assert service.stats().dedup_hits == 0


class TestServiceScheduling:
    def test_priority_order_is_honoured(self):
        gate = threading.Event()
        solver = _CountingSolver(gate=gate)
        with MappingService(workers=1, solve_fn=solver) as service:
            # the first job occupies the single worker at the gate (top
            # urgency, so it wins even if the worker dequeues late);
            # the rest queue up and must drain urgent-first
            blocker = service.submit(
                MappingRequest(app="Bitonic", n=8, num_gpus=1,
                               priority=-100))
            low = service.submit(
                MappingRequest(app="Bitonic", n=8, num_gpus=2, priority=5))
            high = service.submit(
                MappingRequest(app="Bitonic", n=8, num_gpus=4, priority=-5))
            gate.set()
            for ticket in (blocker, low, high):
                ticket.result()
        # execution order: the blocker first (it held the worker), then
        # the urgent request jumps the earlier-submitted background one
        assert [gpus for _, gpus, _ in solver.calls] == [1, 4, 2]

    def test_expired_deadline_fails_without_solving(self):
        gate = threading.Event()
        solver = _CountingSolver(gate=gate)
        with MappingService(workers=1, solve_fn=solver) as service:
            blocker = service.submit(
                MappingRequest(app="Bitonic", n=8, num_gpus=1))
            doomed = service.submit(
                MappingRequest(app="Bitonic", n=8, num_gpus=2,
                               deadline_s=0.0))
            gate.set()
            blocker.result()
            with pytest.raises(ServiceError, match="deadline expired"):
                doomed.result()
            response = doomed.response()
        assert response["state"] == "failed"
        assert service.stats().expired == 1
        assert len(solver.calls) == 1  # only the blocker solved

    def test_deadline_downgrades_the_budget_tier(self):
        solver = _CountingSolver()
        with MappingService(workers=1, solve_fn=solver) as service:
            service.submit(
                MappingRequest(app="Bitonic", n=8, num_gpus=2,
                               budget="ample", deadline_s=2.5)
            ).result()
        # ~2.5 s remaining fits the "default" tier, not "ample"
        # (a heavily loaded box may shave it further, never upward)
        assert solver.calls[0][2] in ("default", "small", "instant")
        assert solver.calls[0][2] != "ample"

    def test_failed_solve_reports_and_does_not_kill_workers(self):
        solver = _CountingSolver(fail=True)
        with MappingService(workers=1, solve_fn=solver) as service:
            bad = service.submit(MappingRequest(app="Bitonic", n=8))
            with pytest.raises(ServiceError, match="injected solver"):
                bad.result()
            # the worker survived and still serves
            ok_solver_result = bad.response()
        assert ok_solver_result["state"] == "failed"
        assert service.stats().failed == 1

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="workers"):
            MappingService(workers=0)
        with pytest.raises(ValueError, match="executor"):
            MappingService(executor="fiber")


# ----------------------------------------------------------------------
# service-layer concurrency regressions (the PR-8 bugfix sweep)
# ----------------------------------------------------------------------
class TestServiceConcurrencyRegressions:
    def test_stats_returns_a_locked_snapshot(self):
        """Regression: ``stats()`` used to hand back the *live mutable*
        counters object — a caller could see torn multi-field reads and
        corrupt the service's counters through the alias."""
        solver = _CountingSolver()
        with MappingService(solve_fn=solver) as service:
            request = MappingRequest(app="Bitonic", n=8, num_gpus=2)
            service.submit(request).result()
            snapshot = service.stats()
            assert snapshot is not service.stats()  # a copy per call
            # a buggy caller scribbling on its snapshot must not be able
            # to corrupt the service's own accounting
            snapshot.solved += 100
            snapshot.submitted += 100
        fresh = service.stats()
        assert fresh.solved == 1 and fresh.submitted == 1
        # to_json()/render() still live on the snapshot type
        assert fresh.to_json()["solved"] == 1
        assert "1 submitted" in fresh.render()

    def test_no_wait_shutdown_fails_queued_tickets(self):
        """Regression: ``shutdown(wait=False)`` closed the queue but
        never resolved still-queued tickets, so a rider blocked in
        ``Ticket.result()`` hung forever (the workers are daemon
        threads — they die with the process)."""
        started, release = threading.Event(), threading.Event()

        def slow_solve(request, tier, cache):
            started.set()
            assert release.wait(timeout=30.0)
            return {"app": request.app}

        service = MappingService(workers=1, solve_fn=slow_solve)
        running = service.submit(
            MappingRequest(app="Bitonic", n=8, num_gpus=2))
        assert started.wait(10)
        queued = [
            service.submit(MappingRequest(app="DES", n=n, num_gpus=2))
            for n in (4, 8)
        ]
        service.shutdown(wait=False)
        # pre-fix: these hang until the timeout (TimeoutError), because
        # nothing ever resolves the stranded tickets
        for ticket in queued:
            with pytest.raises(ServiceError, match="service shut down"):
                ticket.result(timeout=5)
            assert service.store.get(ticket.key).state == FAILED
        assert service.stats().failed == 2
        # the job already running when shutdown began still completes
        release.set()
        assert running.result(timeout=10) == {"app": "Bitonic"}
        service.shutdown(wait=True)

    def test_fingerprint_memo_is_lru_bounded(self, monkeypatch):
        """Regression: the graph-fingerprint memo grew without bound
        under adversarial-unique traffic; it is now a bounded LRU
        (mirroring MilpModelCache)."""
        import repro.graph.fingerprint as fp_mod
        import repro.service.api as api_mod

        monkeypatch.setattr(api_mod, "build_request_graph",
                            lambda request: (request.app, request.n))
        monkeypatch.setattr(fp_mod, "graph_fingerprint",
                            lambda graph: f"fp-{graph[1]}")
        with MappingService(solve_fn=_CountingSolver()) as service:
            service._fingerprint_cap = 8
            for n in range(50):
                service._fingerprint(MappingRequest(app="Bitonic", n=n))
            assert len(service._fingerprints) <= 8
            # the most recent keys survive ...
            assert ("Bitonic", 49) in service._fingerprints
            assert ("Bitonic", 0) not in service._fingerprints
            # ... and a *hit* refreshes recency: touching 42 keeps it
            # alive past the next insertion, which evicts 43 instead
            assert service._fingerprint(
                MappingRequest(app="Bitonic", n=42)) == "fp-42"
            service._fingerprint(MappingRequest(app="Bitonic", n=99))
            assert ("Bitonic", 42) in service._fingerprints
            assert ("Bitonic", 43) not in service._fingerprints


class TestServiceEndToEnd:
    def test_real_solve_roundtrip(self):
        with MappingService(workers=2) as service:
            tickets = [
                service.submit(
                    MappingRequest(app="Bitonic", n=8, num_gpus=2,
                                   budget="instant")
                )
                for _ in range(4)
            ]
            results = [t.result() for t in tickets]
        assert service.stats().solved == 1
        assert all(result == results[0] for result in results)
        result = results[0]
        assert len(result["assignment"]) == result["num_partitions"]
        assert result["tmax"] > 0 and result["throughput"] > 0
        assert result["budget"] == "instant"
        assert result["solver"].startswith("portfolio[")

    def test_process_executor_with_disk_cache(self, tmp_path):
        cache = StageCache(str(tmp_path / "cache"))
        with MappingService(cache=cache, workers=2,
                            executor="process") as service:
            ticket = service.submit(
                MappingRequest(app="Bitonic", n=8, num_gpus=2,
                               budget="instant")
            )
            result = ticket.result()
        assert result["num_gpus"] == 2
        # the pool worker warmed the shared on-disk cache and folded
        # its counters into the directory's shared stats file
        assert len(cache.disk_entries()) > 0
        persisted = StageCache.persisted_stats(cache.path)
        assert persisted is not None and persisted.lookups > 0

    def test_memory_cache_forces_thread_mode(self):
        service = MappingService(executor="process")
        try:
            assert service.executor == "thread"
        finally:
            service.shutdown()


class TestServeStream:
    def test_responses_in_input_order_with_dedup_and_failures(self):
        solver = _CountingSolver()
        lines = [
            json.dumps({"app": "Bitonic", "n": 8, "num_gpus": 2,
                        "tag": "a"}),
            "# a comment line",
            json.dumps({"app": "Bitonic", "n": 8, "num_gpus": 2,
                        "tag": "b"}),
            "{malformed",
            json.dumps({"app": "NoSuchApp", "n": 8}),
        ]
        out = io.StringIO()
        with MappingService(workers=2, solve_fn=solver) as service:
            failures = serve_stream(
                io.StringIO("\n".join(lines) + "\n"), out, service
            )
        responses = [json.loads(line) for line in out.getvalue().splitlines()]
        assert failures == 2
        assert len(responses) == 4  # comment skipped
        assert responses[0]["state"] == "done"
        assert responses[0]["tag"] == "a"
        assert responses[1]["state"] == "done"
        assert responses[1]["tag"] == "b"
        assert responses[1]["dedup"] == "inflight" or (
            responses[1]["dedup"] == "completed"
        )
        assert responses[2]["state"] == "failed"
        assert "line 4" in responses[2]["error"]
        assert responses[3]["state"] == "failed"
        assert len(solver.calls) == 1

    def test_strict_mode_raises_before_submitting(self):
        """A malformed line anywhere in the stream must abort before
        ANY request is submitted — strict is an all-or-nothing gate."""
        solver = _CountingSolver()
        good = json.dumps({"app": "Bitonic", "n": 8, "num_gpus": 2})
        with MappingService(solve_fn=solver) as service:
            with pytest.raises(ValueError):
                serve_stream(
                    io.StringIO(good + "\n{malformed\n"), io.StringIO(),
                    service, strict=True,
                )
        assert solver.calls == []
        assert service.stats().submitted == 0

    def test_blank_and_comment_lines_produce_no_output(self):
        """Padding lines are skipped silently — no response lines, no
        failures, nothing submitted."""
        solver = _CountingSolver()
        out = io.StringIO()
        with MappingService(solve_fn=solver) as service:
            failures = serve_stream(
                io.StringIO("\n   \n# just a comment\n\t\n"), out, service
            )
        assert failures == 0
        assert out.getvalue() == ""
        assert solver.calls == []
        assert service.stats().submitted == 0

    def test_failure_count_includes_solver_failures(self):
        """The return value counts every non-done line: malformed input
        AND jobs whose solve raised."""
        solver = _CountingSolver(fail=True)
        good = json.dumps({"app": "Bitonic", "n": 8, "num_gpus": 2})
        out = io.StringIO()
        with MappingService(solve_fn=solver) as service:
            failures = serve_stream(
                io.StringIO(good + "\n{malformed\n"), out, service
            )
        responses = [json.loads(line) for line in out.getvalue().splitlines()]
        assert failures == 2
        assert [r["state"] for r in responses] == ["failed", "failed"]
        assert "injected solver failure" in responses[0]["error"]
        assert "line 2" in responses[1]["error"]

    def test_strict_vs_non_strict_on_invalid_values(self):
        """An unknown knob *value* (not just malformed JSON) is a
        failure line when lenient and an abort-before-submit when
        strict."""
        solver = _CountingSolver()
        bad_value = json.dumps({"app": "Bitonic", "n": 8,
                                "budget": "lavish"})
        out = io.StringIO()
        with MappingService(solve_fn=solver) as service:
            failures = serve_stream(io.StringIO(bad_value + "\n"),
                                    out, service)
            assert failures == 1
            response = json.loads(out.getvalue())
            assert response["state"] == "failed"
            assert "line 1" in response["error"]
            assert "budget" in response["error"]
            with pytest.raises(ValueError, match="budget"):
                serve_stream(io.StringIO(bad_value + "\n"), io.StringIO(),
                             service, strict=True)
        assert solver.calls == []


# ----------------------------------------------------------------------
# StageCache under concurrency + persisted counters
# ----------------------------------------------------------------------
class TestStageCacheConcurrency:
    def test_thread_hammer_stays_consistent(self, tmp_path):
        cache = StageCache(str(tmp_path / "cache"))
        threads, per_thread, errors = 8, 50, []

        def hammer(worker):
            try:
                for i in range(per_thread):
                    key = f"mapping.{worker}-{i:03d}"
                    cache.put(key, {"worker": worker, "i": i})
                    value = cache.get(key)
                    assert value == {"worker": worker, "i": i}
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        pool = [
            threading.Thread(target=hammer, args=(w,)) for w in range(threads)
        ]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        assert errors == []
        assert len(cache) == threads * per_thread
        stats = cache.stats()
        assert stats.hits == threads * per_thread
        assert stats.misses == 0
        # and every disk entry survived intact
        assert len(cache.disk_entries()) == threads * per_thread

    def test_persist_stats_never_double_counts(self, tmp_path):
        path = str(tmp_path / "cache")
        cache = StageCache(path)
        cache.put("mapping.k", {"v": 1})
        cache.get("mapping.k")
        cache.get("mapping.missing")
        first = cache.persist_stats()
        assert (first.hits, first.misses) == (1, 1)
        second = cache.persist_stats()  # nothing new since the flush
        assert (second.hits, second.misses) == (1, 1)
        cache.get("mapping.k")
        third = cache.persist_stats()
        assert (third.hits, third.misses) == (2, 1)

    def test_persisted_stats_merge_across_instances(self, tmp_path):
        path = str(tmp_path / "cache")
        a, b = StageCache(path), StageCache(path)
        a.put("profile.x", 1)
        a.get("profile.x")
        a.persist_stats()
        b.get("profile.missing")
        merged = b.persist_stats()
        assert merged.hits == 1 and merged.misses == 1
        on_disk = StageCache.persisted_stats(path)
        assert on_disk.to_json() == merged.to_json()

    def test_memory_only_cache_has_no_persisted_stats(self):
        assert StageCache().persist_stats() is None

    def test_purge_by_stage(self, tmp_path):
        cache = StageCache(str(tmp_path / "cache"))
        cache.put("mapping.a", 1)
        cache.put("profile.b", 2)
        assert cache.purge(stage="mapping") == 1
        assert cache.get("mapping.a") is None
        assert cache.get("profile.b") == 2
        stages = {stage for stage, _, _ in cache.disk_entries()}
        assert stages == {"profile"}


# ----------------------------------------------------------------------
# CLI: submit / serve / cache
# ----------------------------------------------------------------------
class TestServiceCli:
    def test_submit_emits_a_canonical_line(self, capsys):
        assert cli_main([
            "submit", "--app", "Bitonic", "--n", "8", "--gpus", "2",
            "--budget", "instant", "--tag", "t1",
        ]) == 0
        line = capsys.readouterr().out.strip()
        payload = json.loads(line)
        assert payload["app"] == "Bitonic"
        assert payload["budget"] == "instant"
        request = request_from_json(payload)
        assert request.tag == "t1"

    def test_submit_rejects_platform_plus_gpus(self, capsys):
        with pytest.raises(SystemExit):
            cli_main(["submit", "--app", "DES", "--n", "4", "--gpus", "2",
                      "--platform", "two-island"])

    def test_submit_to_file_then_serve(self, tmp_path, capsys):
        reqs = str(tmp_path / "reqs.jsonl")
        out = str(tmp_path / "out.jsonl")
        for _ in range(2):
            assert cli_main([
                "submit", "--app", "Bitonic", "--n", "8", "--gpus", "2",
                "--budget", "instant", "--to", reqs,
            ]) == 0
        assert cli_main([
            "serve", "--requests", reqs, "--out", out,
            "--cache-dir", str(tmp_path / "cache"),
            "--store", str(tmp_path / "store"),
            "--workers", "2", "--quiet",
        ]) == 0
        responses = [
            json.loads(line) for line in open(out).read().splitlines()
        ]
        assert len(responses) == 2
        assert {r["state"] for r in responses} == {"done"}
        assert responses[0]["result"] == responses[1]["result"]
        # a re-serve on the same store answers entirely from dedup
        assert cli_main([
            "serve", "--requests", reqs, "--out", out,
            "--cache-dir", str(tmp_path / "cache"),
            "--store", str(tmp_path / "store"), "--quiet",
        ]) == 0
        responses = [
            json.loads(line) for line in open(out).read().splitlines()
        ]
        assert {r["dedup"] for r in responses} == {"completed"}

    def test_serve_self_check_gate(self, capsys):
        assert cli_main(["serve", "--self-check"]) == 0
        err = capsys.readouterr().err
        assert "1 solve(s), 7 dedup hit(s)" in err

    def test_serve_self_check_http_gate(self, capsys):
        """The live-HTTP half of ``make service-check``: 8 duplicate
        POSTs -> 1 solve, proven by scraping /metrics."""
        assert cli_main(["serve", "--self-check-http"]) == 0
        err = capsys.readouterr().err
        assert "1 solve(s), 7 dedup hit(s)" in err

    def test_serve_http_rejects_requests_flag(self, capsys):
        with pytest.raises(SystemExit):
            cli_main(["serve", "--http", "0", "--requests", "x.jsonl"])
        assert "drop --requests" in capsys.readouterr().err

    def test_cache_stats_and_purge(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        cache = StageCache(cache_dir)
        cache.put("mapping.k1", {"v": 1})
        cache.put("profile.k2", {"v": 2})
        cache.persist_stats()
        assert cli_main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "mapping" in out and "profile" in out
        assert "lifetime" in out
        assert cli_main([
            "cache", "purge", "--cache-dir", cache_dir, "--stage", "mapping",
        ]) == 0
        assert cli_main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "purged 1 mapping entries" in out
        assert cli_main(["cache", "purge", "--cache-dir", cache_dir]) == 0

    def test_cache_stats_rejects_missing_dir(self, tmp_path):
        with pytest.raises(SystemExit):
            cli_main(["cache", "stats", "--cache-dir",
                      str(tmp_path / "nope")])
