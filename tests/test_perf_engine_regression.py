"""Tests for the PEE facade and the C1/C2 regression."""

import pytest

from repro.graph.builder import linear_pipeline_graph
from repro.gpu.simulator import KernelSimulator, SimCosts
from repro.gpu.specs import C2070, M2090
from repro.perf.engine import PerformanceEstimationEngine
from repro.perf.model import ModelParams
from repro.perf.regression import fit_transfer_constants


def _engine(rate=32, stages=4, work=60.0, spec=M2090):
    g = linear_pipeline_graph("eng", stages=stages, rate=rate, work=work)
    return PerformanceEstimationEngine(g, spec=spec)


class TestEngine:
    def test_estimates_are_cached(self):
        eng = _engine()
        members = [n.node_id for n in eng.graph.nodes]
        first = eng.estimate(members)
        second = eng.estimate(members)
        assert first is second
        assert eng.cache_size == 1

    def test_t_shorthand(self):
        eng = _engine()
        members = [n.node_id for n in eng.graph.nodes]
        assert eng.t(members) == eng.estimate(members).t

    def test_subset_estimates_differ(self):
        # compute-bound workload so T depends on which filters are inside
        eng = _engine(work=5000.0)
        all_ids = [n.node_id for n in eng.graph.nodes]
        assert eng.t(all_ids) != eng.t(all_ids[:2])

    def test_measure_uses_selected_parameters(self):
        eng = _engine()
        members = [n.node_id for n in eng.graph.nodes]
        pe = eng.estimate(members)
        measurement = eng.measure(members)
        assert measurement.config == pe.config

    def test_prediction_close_to_measurement(self):
        """The Figure 4.1 property, single data point: prediction within
        ~25% of the simulated measurement for a well-formed partition."""
        eng = _engine()
        members = [n.node_id for n in eng.graph.nodes]
        predicted = eng.t(members)
        measured = eng.measure(members).per_execution
        assert predicted == pytest.approx(measured, rel=0.25)

    def test_mismatched_simulator_spec_rejected(self):
        g = linear_pipeline_graph("mismatch", stages=2)
        with pytest.raises(ValueError):
            PerformanceEstimationEngine(
                g, spec=M2090, simulator=KernelSimulator(C2070)
            )

    def test_empty_estimate_rejected(self):
        eng = _engine()
        with pytest.raises(ValueError):
            eng.estimate([])


class TestRegression:
    def test_recovers_simulator_constants(self):
        report = fit_transfer_constants(M2090)
        assert report.c1 == pytest.approx(38.4, rel=0.15)
        assert report.c2 == pytest.approx(11.2, rel=0.6)
        assert report.r_squared > 0.95

    def test_noise_free_fit_is_exact(self):
        costs = SimCosts(
            dt_noise=0.0, compute_noise=0.0, conflict_probability=0.0,
            background_conflict=0.0, instruction_mix_spread=0.0,
        )
        sim = KernelSimulator(M2090, costs=costs)
        report = fit_transfer_constants(M2090, simulator=sim)
        assert report.c1 == pytest.approx(38.4, rel=0.02)
        assert report.c2 == pytest.approx(11.2, rel=0.05)
        assert report.r_squared > 0.999

    def test_c2070_fit_rescales_to_reference(self):
        report = fit_transfer_constants(C2070)
        # constants are expressed in the M2090 reference frame, so the
        # fit should land near the same values
        assert report.c1 == pytest.approx(38.4, rel=0.2)

    def test_as_params(self):
        report = fit_transfer_constants(M2090)
        params = report.as_params(ModelParams(spill_ns_per_elem=99.0))
        assert params.c1 == report.c1
        assert params.spill_ns_per_elem == 99.0
