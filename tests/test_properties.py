"""Property-based tests (hypothesis) on core data structures and
invariants."""

import math

from hypothesis import given, settings, strategies as st

from repro.graph.builder import GraphBuilder
from repro.graph.filters import FilterRole, FilterSpec
from repro.graph.flatten import flatten
from repro.graph.scheduling import steady_state_is_consistent
from repro.graph.structure import (
    duplicate,
    join_roundrobin,
    pipeline,
    roundrobin,
    splitjoin,
)
from repro.gpu.functional import FunctionalVM
from repro.gpu.kernel import KernelConfig
from repro.gpu.memory import partition_memory
from repro.gpu.simulator import KernelSimulator, SimCosts
from repro.gpu.specs import M2090
from repro.gpu.topology import default_topology
from repro.mapping.problem import MappingProblem
from repro.metrics.stats import geometric_mean, r_squared
from repro.partition.convexity import ConvexityOracle

# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
rates = st.integers(min_value=1, max_value=16)


@st.composite
def chain_graphs(draw):
    """A source -> k filters -> sink chain with arbitrary matched rates."""
    k = draw(st.integers(min_value=1, max_value=5))
    builder = GraphBuilder("chain")
    first_rate = draw(rates)
    src = builder.filter("src", pop=0, push=first_rate,
                         role=FilterRole.SOURCE, semantics="source")
    prev, prev_rate = src, first_rate
    for i in range(k):
        pop = draw(rates)
        push = draw(rates)
        nid = builder.filter(f"f{i}", pop=pop, push=push,
                             work=float(draw(st.integers(1, 200))))
        builder.connect(prev, nid)
        prev, prev_rate = nid, push
    snk = builder.filter("snk", pop=draw(rates), push=0,
                         role=FilterRole.SINK, semantics="sink")
    builder.connect(prev, snk)
    return builder.build()


@st.composite
def splitjoin_graphs(draw):
    """source -> split-join -> sink with matched branch rates."""
    branches = draw(st.integers(min_value=1, max_value=4))
    weight = draw(st.integers(min_value=1, max_value=8))
    kind = draw(st.sampled_from(["dup", "rr"]))
    branch_nodes = [
        FilterSpec(name=f"b{i}", pop=weight, push=weight,
                   work=float(draw(st.integers(1, 100))))
        for i in range(branches)
    ]
    split = (
        duplicate(weight, branches)
        if kind == "dup"
        else roundrobin(*([weight] * branches))
    )
    sj = splitjoin(split, branch_nodes, join_roundrobin(*([weight] * branches)))
    total_out = weight * branches
    root = pipeline(
        FilterSpec(name="src", pop=0, push=split.pop_per_firing,
                   role=FilterRole.SOURCE, semantics="source"),
        sj,
        FilterSpec(name="snk", pop=total_out, push=0, role=FilterRole.SINK,
                   semantics="sink"),
    )
    return flatten(root, "sjprop")


# ----------------------------------------------------------------------
# steady-state properties
# ----------------------------------------------------------------------
@given(chain_graphs())
@settings(max_examples=60, deadline=None)
def test_repetition_vector_balances_every_channel(graph):
    assert steady_state_is_consistent(graph)


@given(chain_graphs())
@settings(max_examples=60, deadline=None)
def test_firings_are_minimal(graph):
    gcd = 0
    for node in graph.nodes:
        gcd = math.gcd(gcd, node.firing)
    assert gcd == 1


@given(splitjoin_graphs())
@settings(max_examples=40, deadline=None)
def test_splitjoin_graphs_are_consistent(graph):
    assert steady_state_is_consistent(graph)
    assert graph.is_dag()


# ----------------------------------------------------------------------
# memory-model properties
# ----------------------------------------------------------------------
@given(chain_graphs())
@settings(max_examples=40, deadline=None)
def test_liveness_never_exceeds_static(graph):
    members = [n.node_id for n in graph.nodes]
    live = partition_memory(graph, members, policy="liveness")
    static = partition_memory(graph, members, policy="static")
    assert live.working_set <= static.working_set
    assert live.io_bytes == static.io_bytes


@given(chain_graphs(), st.integers(min_value=1, max_value=8))
@settings(max_examples=40, deadline=None)
def test_smem_monotone_in_w(graph, w):
    mem = partition_memory(graph)
    assert mem.smem_for(w + 1) >= mem.smem_for(w)


@given(splitjoin_graphs())
@settings(max_examples=30, deadline=None)
def test_subset_io_at_least_graph_io(graph):
    # any node subset's boundary traffic >= 0 and the full set's boundary
    # equals primary I/O
    inp, out = graph.io_elems()
    mem = partition_memory(graph)
    assert mem.io_in_traffic == inp * graph.elem_bytes
    assert mem.io_out_traffic == out * graph.elem_bytes


# ----------------------------------------------------------------------
# simulator properties
# ----------------------------------------------------------------------
@given(
    chain_graphs(),
    st.integers(min_value=1, max_value=8),
    st.sampled_from([32, 64, 128]),
)
@settings(max_examples=30, deadline=None)
def test_simulator_deterministic_and_positive(graph, w, f):
    sim = KernelSimulator(M2090)
    members = [n.node_id for n in graph.nodes]
    cfg = KernelConfig(1, w, f)
    a = sim.measure(graph, members, cfg)
    b = sim.measure(graph, members, cfg)
    assert a.t_exec == b.t_exec
    assert a.t_exec > 0


@given(chain_graphs())
@settings(max_examples=30, deadline=None)
def test_more_transfer_threads_never_slow_dt(graph):
    sim = KernelSimulator(M2090, costs=SimCosts(dt_noise=0.0))
    members = [n.node_id for n in graph.nodes]
    t32 = sim.measure(graph, members, KernelConfig(1, 1, 32)).t_dt
    t128 = sim.measure(graph, members, KernelConfig(1, 1, 128)).t_dt
    assert t128 <= t32 + 1e-9


# ----------------------------------------------------------------------
# convexity properties
# ----------------------------------------------------------------------
@given(chain_graphs(), st.data())
@settings(max_examples=40, deadline=None)
def test_chain_convexity_iff_contiguous(graph, data):
    order = graph.topological_order()
    oracle = ConvexityOracle(graph)
    start = data.draw(st.integers(0, len(order) - 1))
    end = data.draw(st.integers(start, len(order) - 1))
    members = order[start : end + 1]
    assert oracle.is_convex(oracle.mask_of(members))


@given(splitjoin_graphs())
@settings(max_examples=30, deadline=None)
def test_singletons_always_convex(graph):
    oracle = ConvexityOracle(graph)
    for node in graph.nodes:
        assert oracle.is_convex(1 << node.node_id)


# ----------------------------------------------------------------------
# mapping-evaluator properties
# ----------------------------------------------------------------------
@given(
    st.lists(st.floats(min_value=1.0, max_value=1e6), min_size=1, max_size=8),
    st.integers(min_value=1, max_value=4),
    st.data(),
)
@settings(max_examples=50, deadline=None)
def test_tmax_at_least_balance_bound(times, gpus, data):
    problem = MappingProblem(
        times=list(times),
        edges={},
        host_io=[(0.0, 0.0)] * len(times),
        topology=default_topology(gpus),
    )
    assignment = [
        data.draw(st.integers(0, gpus - 1)) for _ in times
    ]
    tmax = problem.tmax(assignment)
    assert tmax >= sum(times) / gpus - 1e-6
    assert tmax >= max(times) - 1e-6


# ----------------------------------------------------------------------
# VM properties
# ----------------------------------------------------------------------
@given(splitjoin_graphs(), st.integers(min_value=1, max_value=3))
@settings(max_examples=20, deadline=None)
def test_vm_output_volume_matches_rates(graph, iterations):
    vm = FunctionalVM(graph)
    outputs = vm.run(iterations)
    snk = graph.node_by_name("snk")
    expected = snk.firing * snk.spec.pop * iterations
    assert len(outputs.get("snk", [])) == expected


# ----------------------------------------------------------------------
# statistics properties
# ----------------------------------------------------------------------
@given(st.lists(st.floats(min_value=0.1, max_value=1e3), min_size=1, max_size=20))
@settings(max_examples=50, deadline=None)
def test_geomean_bounded_by_extremes(values):
    gm = geometric_mean(values)
    assert min(values) - 1e-9 <= gm <= max(values) + 1e-9


@given(st.lists(st.floats(min_value=1.0, max_value=1e3), min_size=2, max_size=20))
@settings(max_examples=50, deadline=None)
def test_r_squared_of_exact_prediction_is_one(values):
    assert r_squared(values, list(values)) == 1.0
