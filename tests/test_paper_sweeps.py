"""Cheap invariants across the full paper N sweeps (no partitioning, so
these stay fast even at the largest sizes)."""

import pytest

from repro.apps.registry import APPS, build_app
from repro.graph.dot import to_dot
from repro.graph.validate import validate_graph
from repro.gpu.memory import partition_memory
from repro.gpu.simulator import KernelSimulator
from repro.gpu.specs import C2070, M2090
from repro.partition.baseline import previous_work_partition
from repro.partition.convexity import ConvexityOracle
from repro.perf.engine import PerformanceEstimationEngine

ALL_CASES = [
    (name, n) for name, info in sorted(APPS.items()) for n in info.paper_n
]


@pytest.mark.parametrize("name,n", ALL_CASES)
def test_every_paper_instance_is_a_valid_graph(name, n):
    graph = build_app(name, n)
    validate_graph(graph)


@pytest.mark.parametrize("name", sorted(APPS))
def test_work_and_traffic_monotone_in_n(name):
    info = APPS[name]
    works, traffics = [], []
    for n in info.paper_n:
        graph = build_app(name, n)
        works.append(graph.total_work())
        traffics.append(
            sum(graph.channel_traffic_bytes(ch) for ch in graph.channels)
        )
    assert works == sorted(works)
    assert traffics == sorted(traffics)


@pytest.mark.parametrize("name", ["DES", "DCT", "Bitonic"])
def test_previous_work_partitions_convex_at_scale(name):
    info = APPS[name]
    graph = build_app(name, info.paper_n[-1])
    oracle = ConvexityOracle(graph)
    for members in previous_work_partition(graph, oracle=oracle):
        assert oracle.is_convex(oracle.mask_of(members))


@pytest.mark.parametrize("name", sorted(APPS))
def test_largest_instance_starves_single_kernel(name):
    """At the largest N a single fused kernel is SM-starved — at most one
    concurrent execution (DCT), usually outright spill — which is the
    premise behind SOSP >> 1 at large N."""
    info = APPS[name]
    graph = build_app(name, info.paper_n[-1])
    mem = partition_memory(graph)
    assert mem.smem_for(2) > M2090.shared_mem_bytes


@pytest.mark.parametrize("name", sorted(APPS))
def test_dot_export_renders_all_nodes(name):
    graph = build_app(name, APPS[name].paper_n[0])
    text = to_dot(graph)
    assert text.count("[shape=") == len(graph.nodes)


@pytest.mark.parametrize("name", ["FFT", "MatMul2"])
def test_c2070_estimates_slower_than_m2090(name):
    n = APPS[name].paper_n[1]
    graph = build_app(name, n)
    members = [node.node_id for node in graph.nodes]
    fast = PerformanceEstimationEngine(
        graph, spec=M2090, simulator=KernelSimulator(M2090)
    ).t(members)
    slow = PerformanceEstimationEngine(
        graph, spec=C2070, simulator=KernelSimulator(C2070)
    ).t(members)
    assert slow > fast
