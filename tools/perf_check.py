#!/usr/bin/env python3
"""Perf gate: delta scoring and batch scoring must clear their bars.

Runs the pinned quick corpus (:mod:`repro.mapping.perfprobe`) and
asserts two ratios:

* :meth:`DeltaEvaluator.score_move` probes price refine-style move
  scans at least ``MIN_DELTA_RATIO`` times faster than the interpreted
  evaluator (:meth:`MappingProblem.tmax`) — the cost every solver paid
  per candidate before the compiled kernel existed;
* :meth:`BatchEvaluator.batch_tmax` prices a population of
  ``BATCH_POPULATION`` candidates at least ``MIN_BATCH_RATIO`` times
  faster than the interpreted per-candidate loop (skipped with a note
  when NumPy is unavailable — the pure-python fallback is a correctness
  feature, not a perf claim);
* rebinding a cached :class:`CompiledMilpModel` prepares a solver-ready
  MILP at least ``MIN_MILP_REUSE_RATIO`` times faster than the legacy
  per-solve rebuild, on the sweep-grid repeat shapes — the solve that
  follows is bit-identical on both sides, so preparation is the whole
  difference the model cache makes.

Each bar is a *ratio measured in the same process*, so it holds on a
loaded single-core box where absolute rates swing; a failing problem is
re-measured once with a longer window before the gate fails, to shrug
off one-off scheduler hiccups.  Absolute rates are recorded by ``make
bench-kernel`` into ``BENCH_kernel.json``; this gate never asserts them.

Exits non-zero listing every violation; run via ``make perf-check``.
"""

from __future__ import annotations

import sys


def main() -> int:
    sys.path.insert(0, "src")
    from repro.mapping.batch import _np
    from repro.mapping.perfprobe import (
        MIN_BATCH_RATIO,
        MIN_DELTA_RATIO,
        MIN_MILP_REUSE_RATIO,
        measure_batch_rates_gated,
        measure_eval_rates_gated,
        measure_milp_reuse_rates_gated,
        milp_sweep_shapes,
        quick_corpus,
    )

    failures = []
    corpus = quick_corpus()
    for label, problem in corpus:
        rates = measure_eval_rates_gated(problem)
        ratio = rates["delta_vs_interp"]
        status = "ok" if ratio >= MIN_DELTA_RATIO else "FAIL"
        print(
            f"  {label:22s} interp {rates['interp_full_per_s']:9.0f}/s  "
            f"delta {rates['delta_move_per_s']:9.0f}/s  "
            f"x{ratio:5.1f}  {status}"
        )
        if ratio < MIN_DELTA_RATIO:
            failures.append(f"{label}: delta only x{ratio:.1f} interpreted")
    if _np is None:
        print("  batch bar skipped: NumPy unavailable "
              "(pure-python fallback carries no perf claim)")
    else:
        for label, problem in corpus:
            rates = measure_batch_rates_gated(problem)
            ratio = rates["batch_vs_interp"]
            status = "ok" if ratio >= MIN_BATCH_RATIO else "FAIL"
            print(
                f"  {label:22s} interp {rates['interp_full_per_s']:9.0f}/s  "
                f"batch {rates['batch_cand_per_s']:9.0f}/s  "
                f"x{ratio:5.1f}  {status}"
            )
            if ratio < MIN_BATCH_RATIO:
                failures.append(
                    f"{label}: batch only x{ratio:.1f} interpreted"
                )
    for label, problem in milp_sweep_shapes():
        rates = measure_milp_reuse_rates_gated(problem)
        ratio = rates["reuse_vs_rebuild"]
        status = "ok" if ratio >= MIN_MILP_REUSE_RATIO else "FAIL"
        print(
            f"  {label:22s} rebuild {rates['rebuild_prep_per_s']:8.0f}/s  "
            f"rebind {rates['rebind_prep_per_s']:10.0f}/s  "
            f"x{ratio:5.1f}  {status}"
        )
        if ratio < MIN_MILP_REUSE_RATIO:
            failures.append(
                f"{label}: milp rebind only x{ratio:.1f} rebuild"
            )
    if failures:
        print("perf-check FAILED "
              f"(bars: delta >= x{MIN_DELTA_RATIO:.0f}, "
              f"batch >= x{MIN_BATCH_RATIO:.0f}, "
              f"milp reuse >= x{MIN_MILP_REUSE_RATIO:.1f}):")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"perf-check OK: delta >= x{MIN_DELTA_RATIO:.0f} and "
          f"batch >= x{MIN_BATCH_RATIO:.0f} interpreted evaluation, "
          f"milp rebind >= x{MIN_MILP_REUSE_RATIO:.1f} rebuild "
          "on the probe shapes")
    return 0


if __name__ == "__main__":
    sys.exit(main())
