#!/usr/bin/env python3
"""Documentation gate: every public API symbol must be documented.

Checks, for every name in ``repro.__all__``, ``repro.sweep.__all__``,
``repro.synth.__all__``, ``repro.service.__all__``,
``repro.mapping.__all__``, and ``repro.gpu.__all__`` — plus the
module-level ``__all__`` of the re-mapping layer
(``repro.gpu.delta``, ``repro.mapping.repair``,
``repro.synth.scenarios``, ``repro.service.remap``):

* the symbol carries a non-empty docstring (classes and functions), and
* exported *functions* carry an executable example (a ``>>>`` doctest
  line) — the examples themselves are executed by
  ``tests/test_doctests_and_noise.py``.

Exits non-zero listing every violation; run via ``make docs-check``.
"""

from __future__ import annotations

import inspect
import sys


def check_module(module, require_examples: bool) -> list:
    problems = []
    for name in module.__all__:
        obj = getattr(module, name)
        if not (inspect.isclass(obj) or callable(obj)):
            continue  # plain constants (e.g. __version__, GPU spec objects)
        doc = inspect.getdoc(obj)
        where = f"{module.__name__}.{name}"
        if not doc or not doc.strip():
            problems.append(f"{where}: missing docstring")
            continue
        if (
            require_examples
            and inspect.isfunction(obj)
            and ">>>" not in doc
        ):
            problems.append(f"{where}: function lacks a doctest example")
    return problems


def main() -> int:
    sys.path.insert(0, "src")
    import repro
    import repro.gpu
    import repro.gpu.delta
    import repro.mapping
    import repro.mapping.repair
    import repro.service
    import repro.service.remap
    import repro.sweep
    import repro.synth
    import repro.synth.scenarios

    modules = (
        repro,
        repro.gpu,
        repro.gpu.delta,
        repro.mapping,
        repro.mapping.repair,
        repro.sweep,
        repro.synth,
        repro.synth.scenarios,
        repro.service,
        repro.service.remap,
    )
    problems = []
    for module in modules:
        problems += check_module(module, require_examples=True)
    if problems:
        print("docs-check FAILED:")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    count = sum(len(module.__all__) for module in modules)
    print(f"docs-check OK: {count} public symbols documented")
    return 0


if __name__ == "__main__":
    sys.exit(main())
