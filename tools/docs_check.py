#!/usr/bin/env python3
"""Documentation gate: every public API symbol must be documented.

Checks, for every name in ``repro.__all__``, ``repro.sweep.__all__``,
``repro.synth.__all__``, ``repro.service.__all__``,
``repro.mapping.__all__``, and ``repro.gpu.__all__``:

* the symbol carries a non-empty docstring (classes and functions), and
* exported *functions* carry an executable example (a ``>>>`` doctest
  line) — the examples themselves are executed by
  ``tests/test_doctests_and_noise.py``.

Exits non-zero listing every violation; run via ``make docs-check``.
"""

from __future__ import annotations

import inspect
import sys


def check_module(module, require_examples: bool) -> list:
    problems = []
    for name in module.__all__:
        obj = getattr(module, name)
        if not (inspect.isclass(obj) or callable(obj)):
            continue  # plain constants (e.g. __version__, GPU spec objects)
        doc = inspect.getdoc(obj)
        where = f"{module.__name__}.{name}"
        if not doc or not doc.strip():
            problems.append(f"{where}: missing docstring")
            continue
        if (
            require_examples
            and inspect.isfunction(obj)
            and ">>>" not in doc
        ):
            problems.append(f"{where}: function lacks a doctest example")
    return problems


def main() -> int:
    sys.path.insert(0, "src")
    import repro
    import repro.gpu
    import repro.mapping
    import repro.service
    import repro.sweep
    import repro.synth

    problems = check_module(repro, require_examples=True)
    problems += check_module(repro.gpu, require_examples=True)
    problems += check_module(repro.mapping, require_examples=True)
    problems += check_module(repro.sweep, require_examples=True)
    problems += check_module(repro.synth, require_examples=True)
    problems += check_module(repro.service, require_examples=True)
    if problems:
        print("docs-check FAILED:")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    count = (
        len(repro.__all__) + len(repro.gpu.__all__)
        + len(repro.mapping.__all__)
        + len(repro.sweep.__all__) + len(repro.synth.__all__)
        + len(repro.service.__all__)
    )
    print(f"docs-check OK: {count} public symbols documented")
    return 0


if __name__ == "__main__":
    sys.exit(main())
