"""Benchmark: regenerate Figure 4.4 (SOSP cross-GPU validity)."""

from repro.experiments import fig4_4


def test_bench_fig4_4(benchmark, quick):
    result = benchmark.pedantic(
        fig4_4.run, kwargs={"quick": quick}, rounds=1, iterations=1
    )
    print()
    print(result.render())
    bound = result.summary["theoretical bound (paper: 12%)"]
    assert abs(bound - 0.12) < 0.02  # the paper's 12% derivation
    # the paper's claim holds for the software it argues about
    within, total = (
        int(v)
        for v in str(
            result.summary["previous-work software within bound (paper's claim)"]
        ).split(" / ")
    )
    assert within == total