"""Benchmark: incremental repair vs full re-solve after a kill-GPU delta.

Measures, and records into ``BENCH_repair.json`` at the repo root:

* per-case wall times for :func:`repro.mapping.repair.solve_repair`
  (seeded from the deployed mapping) and for a from-scratch
  :func:`repro.service.portfolio.solve_portfolio` on the same degraded
  machine, plus their ratio — the headline "repair is cheaper than
  re-solving" number, recorded for the trajectory and never asserted
  (wall clock is load-sensitive on the CI box);
* the repair-vs-resolve quality gap (``repaired_tmax /
  from_scratch_tmax``, 1.0 = repair matched) and the churn the repair
  paid (migrated / evicted partitions, bytes moved).

What *is* asserted is correctness, which is load-insensitive: every
repaired mapping must be valid, bit-exact under the shared evaluator
(``mapping.tmax == MappingProblem.tmax(assignment)``), no worse than
the greedy-from-scratch floor, and deterministic back to back.
"""

import json
import time
from pathlib import Path

from repro.apps import build_app
from repro.flow import partition_stage, pdg_stage, profile_stage
from repro.gpu.delta import PlatformDelta, apply_deltas
from repro.gpu.platforms import build_platform
from repro.mapping.problem import build_mapping_problem
from repro.mapping.repair import solve_repair
from repro.service.portfolio import solve_portfolio

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_repair.json"

#: (app, n, platform, gpu to kill) — one small, one mid-size bundled
#: benchmark and one synthetic DAG, on three different catalog machines
CASES = (
    ("Bitonic", 8, "host-star", 1),
    ("DES", 8, "two-island", 2),
    ("synth:dag;layers=3;width=2", 1, "deep-tree-8", 3),
)

#: both sides solve under the same deterministic tier, so the wall
#: ratio compares algorithms, not budgets
BUDGET = "small"


def _best_of(fn, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _front_half(app, n):
    graph = build_app(app, n)
    engine = profile_stage(graph)
    partitions, partitioning = partition_stage(graph, engine)
    return pdg_stage(graph, partitions, engine, partitioning=partitioning)


def test_bench_repair(benchmark):
    prepared = []
    for app, n, platform, gpu in CASES:
        pdg = _front_half(app, n)
        topo_order = pdg.topological_order()
        base = build_platform(platform)
        base_problem = build_mapping_problem(
            pdg, base.num_gpus, topology=base
        )
        baseline = solve_portfolio(
            base_problem, budget=BUDGET, topo_order=topo_order
        ).mapping
        hit = apply_deltas(base, [PlatformDelta.kill_gpu(gpu)])
        problem = build_mapping_problem(
            pdg, hit.topology.num_gpus, topology=hit.topology
        )
        label = f"{app}@{n}/{platform}-kill{gpu}"
        prepared.append(
            (label, problem, baseline.assignment, hit.gpu_map, topo_order)
        )

    cases = {}
    for label, problem, old, gpu_map, topo_order in prepared:
        def do_repair():
            return solve_repair(
                problem, old, gpu_map=gpu_map, budget=BUDGET,
                topo_order=topo_order,
            )

        def do_resolve():
            return solve_portfolio(
                problem, budget=BUDGET, topo_order=topo_order
            )

        repair = do_repair()
        resolve = do_resolve().mapping

        # -- asserted: the repair guarantees (load-insensitive) ---------
        assignment = repair.mapping.assignment
        assert len(assignment) == problem.num_partitions, label
        assert all(0 <= g < problem.num_gpus for g in assignment), label
        assert repair.mapping.tmax == problem.tmax(assignment), label
        assert repair.mapping.tmax <= repair.greedy_tmax * (1 + 1e-9), label
        again = do_repair()
        assert again.mapping.assignment == assignment, label
        assert again.mapping.tmax == repair.mapping.tmax, label

        # -- recorded: wall ratio and quality gap -----------------------
        repair_s = _best_of(do_repair)
        resolve_s = _best_of(do_resolve)
        cases[label] = {
            "repair_ms": repair_s * 1e3,
            "resolve_ms": resolve_s * 1e3,
            "resolve_vs_repair_wall": resolve_s / repair_s,
            "quality_gap": repair.mapping.tmax / resolve.tmax,
            "fallback": repair.fallback,
            "migrated": len(repair.migrated),
            "evicted": len(repair.evicted),
            "migration_bytes": repair.migration_bytes,
            "moves": repair.moves,
        }

    def repair_sweep():
        for _label, problem, old, gpu_map, topo_order in prepared:
            solve_repair(
                problem, old, gpu_map=gpu_map, budget=BUDGET,
                topo_order=topo_order,
            )

    benchmark.pedantic(repair_sweep, rounds=1, iterations=1)

    record = {
        "schema": "bench-repair/v1",
        "budget": BUDGET,
        "cases": cases,
    }
    BENCH_PATH.write_text(json.dumps(record, indent=1, sort_keys=True) + "\n")

    print()
    for label, row in cases.items():
        print(f"{label:38s} repair {row['repair_ms']:7.1f}ms  "
              f"resolve {row['resolve_ms']:7.1f}ms  "
              f"(x{row['resolve_vs_repair_wall']:.1f})  "
              f"gap {row['quality_gap']:.3f}"
              f"{'  [fallback]' if row['fallback'] else ''}")
