"""Benchmark: regenerate Figure 4.3 (SOSP vs the previous work)."""

from repro.experiments import fig4_3


def test_bench_fig4_3(benchmark, quick):
    result = benchmark.pedantic(
        fig4_3.run, kwargs={"quick": quick}, rounds=1, iterations=1
    )
    print()
    print(result.render())
    # ours should beat [7] in the clear majority of cases
    wins, total = (
        int(v) for v in str(
            result.summary["cases where ours beats previous"]
        ).split(" / ")
    )
    assert wins > total / 2
