"""Benchmark: regenerate Figure 3.2 (pipeline vs split SM behaviour)."""

from repro.experiments import fig3_2


def test_bench_fig3_2(benchmark, quick):
    result = benchmark.pedantic(
        fig3_2.run, kwargs={"quick": quick}, rounds=1, iterations=1
    )
    print()
    print(result.render())
    assert result.summary["split/pipeline live-peak ratio grows with width"]
