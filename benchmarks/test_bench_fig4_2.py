"""Benchmark: regenerate Figure 4.2 (multi-GPU scalability)."""

from repro.experiments import fig4_2


def test_bench_fig4_2(benchmark, quick):
    result = benchmark.pedantic(
        fig4_2.run, kwargs={"quick": quick}, rounds=1, iterations=1
    )
    print()
    print(result.render())
    # the headline shape: large-N 4-GPU speedups well above 2x on average
    four = result.summary.get("avg final-N speedup, 4 GPUs", "0")
    assert float(str(four).split()[0]) > 2.0
