"""Benchmark configuration.

Each benchmark regenerates one of the paper's tables/figures end to end
(pytest-benchmark measures the harness runtime; the regenerated rows are
printed so the run doubles as the reproduction log).

Set ``REPRO_FULL=1`` to run the paper-scale sweeps instead of the
3-point quick sweeps.
"""

import os

import pytest


@pytest.fixture(scope="session")
def quick() -> bool:
    return os.environ.get("REPRO_FULL", "0") != "1"
