"""Benchmark: regenerate Table 5.1 (splitter/joiner elimination)."""

from repro.experiments import table5_1


def test_bench_table5_1(benchmark, quick):
    result = benchmark.pedantic(
        table5_1.run, kwargs={"quick": quick}, rounds=1, iterations=1
    )
    print()
    print(result.render())
    assert result.summary["all cases improved"]
    assert result.summary["Bitonic gains exceed FFT gains (paper: yes)"]
