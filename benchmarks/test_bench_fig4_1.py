"""Benchmark: regenerate Figure 4.1 (performance-model validation)."""

from repro.experiments import fig4_1


def test_bench_fig4_1(benchmark, quick):
    result = benchmark.pedantic(
        fig4_1.run, kwargs={"quick": quick}, rounds=1, iterations=1
    )
    print()
    print(result.render())
    assert result.summary["overall R^2 (paper: 0.972)"] > 0.9
    assert result.summary["total partitions validated"] >= 50
