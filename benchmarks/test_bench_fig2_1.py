"""Benchmark: regenerate Figure 2.1's background comparison."""

from repro.experiments import fig2_1


def test_bench_fig2_1(benchmark, quick):
    result = benchmark.pedantic(
        fig2_1.run, kwargs={"quick": quick}, rounds=1, iterations=1
    )
    print()
    print(result.render())
    assert result.summary["geomean fused gain while the graph fits SM"] > 1.0
    assert result.summary["our multi-partition flow >= per-filter everywhere"]
