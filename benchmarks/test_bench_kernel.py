"""Benchmark: the compiled evaluation kernel vs the interpreted paths.

Measures, and records into ``BENCH_kernel.json`` at the repo root:

* full-evaluation rates (interpreted evaluator vs ``EvalKernel``) and
  delta move-scan rates on the pinned quick corpus
  (:mod:`repro.mapping.perfprobe`, paper-scale P),
* batch population-scoring rates (``BatchEvaluator.batch_tmax`` at the
  metaheuristic tier's population size) against the interpreted
  per-candidate loop on the same corpus,
* branch-and-bound nodes/second and refine wall-clock over the pinned
  30-instance synthetic corpus x three machines — the same workload the
  pre-kernel stack was measured on, so the recorded
  ``pre_kernel_baseline`` numbers are directly comparable.

Asserted bars are ratio-based only (stable on a loaded 1-core box):
delta scoring >= 10x interpreted full evaluation, batch scoring >= 10x
the interpreted per-candidate loop (skipped when NumPy is missing), and
the B&B search trees byte-match the golden corpus (node counts equal
the pre-kernel solver's, so nodes/second is an apples-to-apples rate).
"""

import json
import time
from pathlib import Path

from repro.flow import partition_stage, pdg_stage, profile_stage
from repro.gpu.platforms import build_platform
from repro.gpu.topology import default_topology
from repro.mapping.budget import SolveBudget
from repro.mapping.greedy import lpt_mapping
from repro.mapping.batch import _np
from repro.mapping.perfprobe import (
    BATCH_POPULATION,
    MIN_BATCH_RATIO,
    MIN_DELTA_RATIO,
    measure_batch_rates_gated,
    measure_eval_rates_gated,
    quick_corpus,
)
from repro.mapping.problem import build_mapping_problem
from repro.mapping.refine import refine_mapping
from repro.mapping.solver_bb import solve_branch_and_bound
from repro.synth.corpus import PINNED_CORPUS, generate_corpus

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_kernel.json"

#: the pre-kernel solver stack on the same workloads (interpreted
#: evaluator, tree-walk routes, full-rescan refine/B&B), measured on the
#: reference 1-core box immediately before the kernel landed — the
#: anchor the recorded trajectory is read against
PRE_KERNEL_BASELINE = {
    "full_eval_per_s": 14967.7,
    "bb_nodes_per_s": 28018.4,
    "refine_wall_s": 0.0950,
    "note": (
        "pinned corpus x {g2, g4, mixed-box}, SolveBudget tier 'small'; "
        "measured pre-PR5 on the reference 1-core box"
    ),
}


def _pinned_problems():
    out = []
    for inst in generate_corpus(PINNED_CORPUS):
        graph = inst.graph
        engine = profile_stage(graph)
        partitions, partitioning = partition_stage(graph, engine)
        pdg = pdg_stage(graph, partitions, engine, partitioning=partitioning)
        for tag, topo in (
            ("g2", default_topology(2)),
            ("g4", default_topology(4)),
            ("mixed-box", build_platform("mixed-box")),
        ):
            out.append(build_mapping_problem(
                pdg, topo.num_gpus, topology=topo
            ))
    return out


def test_bench_kernel(benchmark):
    # -- evaluation rates on the paper-scale quick corpus ---------------
    eval_rates = {
        label: measure_eval_rates_gated(problem)
        for label, problem in quick_corpus()
    }
    batch_rates = {
        label: measure_batch_rates_gated(problem)
        for label, problem in quick_corpus()
    } if _np is not None else {}

    # -- solver rates on the pinned corpus (the baseline's workload);
    # best of two sweeps, like the eval rates, to shed background load --
    problems = _pinned_problems()
    small = SolveBudget.tier("small")
    seeds = [lpt_mapping(problem) for problem in problems]

    def refine_sweep():
        t0 = time.perf_counter()
        results = [
            refine_mapping(problem, seed.assignment)
            for problem, seed in zip(problems, seeds)
        ]
        return results, time.perf_counter() - t0

    refined, refine_wall_s = min(
        (refine_sweep() for _ in range(2)), key=lambda pair: pair[1]
    )

    def bb_sweep():
        nodes = 0.0
        t0 = time.perf_counter()
        for problem in problems:
            result = solve_branch_and_bound(problem, budget=small)
            nodes += dict(result.solve_stats)["nodes"]
        return nodes, time.perf_counter() - t0

    bb_nodes, bb_wall_s = benchmark.pedantic(bb_sweep, rounds=1, iterations=1)
    bb_nodes2, bb_wall_2 = bb_sweep()
    assert bb_nodes2 == bb_nodes  # deterministic search, same tree
    bb_wall_s = min(bb_wall_s, bb_wall_2)

    record = {
        "schema": "bench-kernel/v2",
        "quick_corpus": eval_rates,
        "quick_corpus_batch": {
            "population": BATCH_POPULATION,
            "rates": batch_rates,
            "numpy": _np is not None,
        },
        "pinned_corpus": {
            "bb_nodes_total": bb_nodes,
            "bb_wall_s": bb_wall_s,
            "bb_nodes_per_s": bb_nodes / bb_wall_s,
            "refine_wall_s": refine_wall_s,
            "refine_steps_total": sum(
                dict(r.solve_stats)["refine_steps"] for r in refined
            ),
        },
        "pre_kernel_baseline": PRE_KERNEL_BASELINE,
        "speedups_vs_pre_kernel": {
            "bb_nodes_per_s": (
                bb_nodes / bb_wall_s / PRE_KERNEL_BASELINE["bb_nodes_per_s"]
            ),
            "refine_wall": (
                PRE_KERNEL_BASELINE["refine_wall_s"] / refine_wall_s
            ),
        },
    }
    BENCH_PATH.write_text(json.dumps(record, indent=1, sort_keys=True) + "\n")

    print()
    for label, rates in eval_rates.items():
        print(f"{label:22s} interp {rates['interp_full_per_s']:9.0f}/s  "
              f"kernel {rates['kernel_full_per_s']:9.0f}/s  "
              f"delta {rates['delta_move_per_s']:9.0f}/s  "
              f"(x{rates['delta_vs_interp']:.1f} interpreted)")
    for label, rates in batch_rates.items():
        print(f"{label:22s} batch {rates['batch_cand_per_s']:9.0f}/s "
              f"at population {BATCH_POPULATION} "
              f"(x{rates['batch_vs_interp']:.1f} interpreted loop)")
    print(f"pinned corpus: B&B {bb_nodes:.0f} nodes in {bb_wall_s:.2f}s = "
          f"{bb_nodes / bb_wall_s:.0f} nodes/s "
          f"(x{record['speedups_vs_pre_kernel']['bb_nodes_per_s']:.1f} "
          f"pre-kernel), refine {refine_wall_s * 1e3:.0f} ms "
          f"(x{record['speedups_vs_pre_kernel']['refine_wall']:.1f})")

    # ratio bars only — absolute rates are recorded, never asserted
    for label, rates in eval_rates.items():
        assert rates["delta_vs_interp"] >= MIN_DELTA_RATIO, (label, rates)
    for label, rates in batch_rates.items():
        assert rates["batch_vs_interp"] >= MIN_BATCH_RATIO, (label, rates)
    # node-for-node identical search trees vs the pre-kernel golden run,
    # so the nodes/second comparison above is apples to apples
    golden_path = (
        Path(__file__).resolve().parents[1]
        / "tests" / "golden" / "kernel" / "pinned_solver_outputs.json"
    )
    golden = json.loads(golden_path.read_text())
    assert bb_nodes == sum(v["bb"]["nodes"] for v in golden.values())
