"""Benchmark: the sweep engine vs naive serial re-execution.

Runs the design-ablation grid (the flow-level points of
``repro.experiments.ablations``) three ways:

1. **serial-uncached** — the pre-sweep-engine behaviour: every point
   recomputes its whole pipeline;
2. **parallel-cached, cold** — process-pool execution populating an
   on-disk stage cache;
3. **parallel-cached, warm** — the same sweep again, served from the
   cache (this is the measured benchmark).

Asserts bit-identical results across all three and a real wall-clock
win for the cached run.
"""

import time

import pytest

from repro.experiments import ablations
from repro.sweep import StageCache, SweepRunner


def _check_same(a, b, strict=True):
    """Record equality between two sweeps.

    ``strict=False`` skips points whose MILP solve hit its wall-clock
    limit in either run (``optimal=False``): the 10 s budget makes those
    assignments load-dependent, which is exactly the irreproducibility
    the stage cache removes — cached replays are always strict.
    """
    assert [r.point for r in a.records] == [r.point for r in b.records]
    for x, y in zip(a.records, b.records):
        if not strict and not (x.optimal and y.optimal):
            continue
        assert x.throughput == y.throughput, x.point
        assert x.tmax == y.tmax, x.point
        assert x.assignment == y.assignment, x.point


def test_bench_sweep_cached_vs_uncached(benchmark, tmp_path):
    grid = ablations.full_grid()
    cache_dir = str(tmp_path / "stage-cache")

    t0 = time.perf_counter()
    uncached = SweepRunner().run(grid)
    serial_uncached_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    cold = SweepRunner(
        cache=StageCache(cache_dir), parallel=True, workers=2
    ).run(grid)
    parallel_cold_s = time.perf_counter() - t0

    def warm_run():
        return SweepRunner(
            cache=StageCache(cache_dir), parallel=True, workers=2
        ).run(grid)

    warm = benchmark.pedantic(warm_run, rounds=1, iterations=1)
    parallel_warm_s = warm.wall_s

    # cached replays are exact; uncached-vs-cold may differ only on
    # points whose ILP hit its wall-clock limit under pool contention
    _check_same(cold, warm)
    _check_same(uncached, cold, strict=False)

    print()
    print(f"grid: {len(grid)} points (design-ablation flow points)")
    print(f"serial-uncached        : {serial_uncached_s:7.2f}s")
    print(f"parallel-cached (cold) : {parallel_cold_s:7.2f}s  "
          f"[{cold.cache_stats.render()}]")
    print(f"parallel-cached (warm) : {parallel_warm_s:7.2f}s  "
          f"[{warm.cache_stats.render()}]")
    print(f"speedup warm vs uncached: "
          f"{serial_uncached_s / parallel_warm_s:.1f}x")

    # the acceptance bar: the cached sweep beats naive serial re-execution
    assert warm.cache_stats.hits > 0
    assert parallel_warm_s < serial_uncached_s
