"""Benchmark: ILP solve time across problem sizes.

The paper reports that "the multi-GPU mapping step took no more than 10
seconds at most with a modern ILP solver".  This benchmark measures our
HiGHS-backed solver on the real mapping problems of increasing size
(partition counts up to DES N=32's ~200).
"""

import pytest

from repro.apps.registry import build_app
from repro.mapping.problem import build_mapping_problem
from repro.mapping.solver_milp import solve_milp
from repro.partition.heuristic import partition_stream_graph
from repro.partition.pdg import build_pdg
from repro.perf.engine import PerformanceEstimationEngine


def _problem(app, n, gpus=4):
    graph = build_app(app, n)
    engine = PerformanceEstimationEngine(graph)
    partitioning = partition_stream_graph(graph, engine=engine)
    pdg = build_pdg(graph, partitioning.partitions, engine,
                    estimates=partitioning.estimates)
    return build_mapping_problem(pdg, gpus)


@pytest.mark.parametrize(
    "app,n",
    [("MatMul2", 6), ("DCT", 18), ("Bitonic", 32), ("DES", 20)],
    ids=["P~10", "P~44", "P~90", "P~133"],
)
def test_bench_milp_solve(benchmark, app, n):
    problem = _problem(app, n)
    result = benchmark.pedantic(
        solve_milp, args=(problem,), rounds=1, iterations=1
    )
    print(f"\n{app} N={n}: {problem.num_partitions} partitions, "
          f"tmax={result.tmax / 1e3:.1f} us, solver={result.solver}, "
          f"optimal={result.optimal}")
    assert result.tmax > 0
