"""Benchmark: the persistent MILP model vs per-solve rebuilds.

Measures, and records into ``BENCH_milp.json`` at the repo root:

* model-preparation rates on the sweep-grid repeat shapes
  (:func:`repro.mapping.perfprobe.milp_sweep_shapes`): the legacy
  row-by-row rebuild every solve used to pay vs
  :meth:`CompiledMilpModel.bind` stamping a payload into the cached
  structure — the ratio is the asserted bar
  (:data:`MIN_MILP_REUSE_RATIO`, same one-retry policy as the kernel
  bars);
* end-to-end first-solve vs repeat-solve wall times through the model
  cache under a root-only budget — recorded for the trajectory, never
  asserted, because the branch-and-bound work is bit-identical on both
  sides (``tests/test_milp_model.py`` pins that) and only the
  preparation differs;
* which backend the solves ran through (direct HiGHS bindings or the
  ``scipy.optimize.milp`` fallback).
"""

import json
import time
from pathlib import Path

from repro.mapping.budget import SolveBudget
from repro.mapping.milp_model import (
    CompiledMilpModel,
    MilpModelCache,
    highs_backend_available,
)
from repro.mapping.perfprobe import (
    MIN_MILP_REUSE_RATIO,
    measure_milp_reuse_rates_gated,
    milp_sweep_shapes,
)

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_milp.json"

#: root-only budget for the recorded solve timings: one node explores
#: the presolve + root relaxation both paths share, keeping the bench
#: seconds-cheap while still timing a real HiGHS invocation
ROOT_BUDGET = SolveBudget(milp_node_limit=1)


def _best_of(fn, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_bench_milp(benchmark):
    shapes = milp_sweep_shapes()

    # -- the asserted bar: preparation rates, reuse vs rebuild ----------
    reuse_rates = {
        label: measure_milp_reuse_rates_gated(problem)
        for label, problem in shapes
    }

    # -- recorded trajectory: end-to-end solve amortization -------------
    root_solve = {}
    for label, problem in shapes:
        cache = MilpModelCache()
        model, _ = cache.get_or_compile(problem)
        first_s = _best_of(
            lambda: CompiledMilpModel(problem).solve(problem, ROOT_BUDGET)
        )
        repeat_s = _best_of(lambda: model.solve(problem, ROOT_BUDGET))
        root_solve[label] = {
            "first_solve_ms": first_s * 1e3,
            "repeat_solve_ms": repeat_s * 1e3,
            "amortization": first_s / repeat_s,
        }

    def repeat_sweep():
        for _, problem in shapes:
            model = CompiledMilpModel(problem)
            model.solve(problem, ROOT_BUDGET)

    benchmark.pedantic(repeat_sweep, rounds=1, iterations=1)

    record = {
        "schema": "bench-milp/v1",
        "min_reuse_ratio": MIN_MILP_REUSE_RATIO,
        "sweep_shapes": reuse_rates,
        "root_solve": root_solve,
        "backend": {"direct_highs": highs_backend_available()},
    }
    BENCH_PATH.write_text(json.dumps(record, indent=1, sort_keys=True) + "\n")

    print()
    for label, rates in reuse_rates.items():
        print(f"{label:18s} rebuild {rates['rebuild_prep_per_s']:8.0f}/s  "
              f"rebind {rates['rebind_prep_per_s']:9.0f}/s  "
              f"(x{rates['reuse_vs_rebuild']:.0f} rebuild)")
    for label, times in root_solve.items():
        print(f"{label:18s} first {times['first_solve_ms']:7.1f}ms  "
              f"repeat {times['repeat_solve_ms']:7.1f}ms  "
              f"(x{times['amortization']:.2f})")

    # ratio bar only — absolute rates are recorded, never asserted
    for label, rates in reuse_rates.items():
        assert rates["reuse_vs_rebuild"] >= MIN_MILP_REUSE_RATIO, (
            label, rates,
        )
