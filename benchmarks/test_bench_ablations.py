"""Benchmarks: design-choice ablations from DESIGN.md."""

from repro.experiments import ablations


def test_bench_ablation_mapping(benchmark, quick):
    result = benchmark.pedantic(
        ablations.run_mapping, kwargs={"quick": quick}, rounds=1, iterations=1
    )
    print()
    print(result.render())
    # model-vs-runtime discrepancies allow tiny losses on single cases;
    # across the case set the ILP must not lose ground
    assert result.summary["geomean ILP advantage over round-robin"] >= 0.95


def test_bench_ablation_phases(benchmark, quick):
    result = benchmark.pedantic(
        ablations.run_phases, kwargs={"quick": quick}, rounds=1, iterations=1
    )
    print()
    print(result.render())


def test_bench_ablation_comm(benchmark, quick):
    result = benchmark.pedantic(
        ablations.run_comm, kwargs={"quick": quick}, rounds=1, iterations=1
    )
    print()
    print(result.render())
    assert result.summary["geomean gain from comm-awareness"] >= 1.0
