"""Benchmark: the HTTP serving tier under synthetic load.

Drives two traffic mixes through a *live* ``MappingHTTPServer`` (real
sockets, real solves at the ``instant`` tier) and records, into
``BENCH_service.json`` at the repo root:

* **duplicate-heavy** — 48 POSTs over 6 unique requests from 8
  concurrent clients: the dedup layer should collapse 48 submissions to
  6 solves (the ratio IS asserted — it is the serving tier's core
  contract, not a timing);
* **adversarial-unique** — 32 POSTs, every one a distinct graph: the
  worst case for every cache in the service.  The graph-fingerprint
  memo must stay flat (LRU-bounded) even though every request misses —
  asserted with the cap deliberately set *below* the number of uniques.

Throughput and latency percentiles are recorded for the trajectory,
never asserted — wall-clock on a loaded CI box is not a contract.
"""

import json
import threading
import time
import urllib.request
from pathlib import Path

from repro.service import MappingService, serve_http

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_service.json"

#: client threads driving each mix
CLIENTS = 8

#: the duplicate-heavy mix: 6 unique requests, 8 POSTs each
DUP_UNIQUE = [
    {"app": "Bitonic", "n": 8, "num_gpus": 1, "budget": "instant"},
    {"app": "Bitonic", "n": 8, "num_gpus": 2, "budget": "instant"},
    {"app": "DES", "n": 4, "num_gpus": 2, "budget": "instant"},
    {"app": "DES", "n": 8, "num_gpus": 2, "budget": "instant"},
    {"app": "synth:pipeline", "n": 0, "num_gpus": 2, "budget": "instant"},
    {"app": "synth:pipeline", "n": 1, "num_gpus": 2, "budget": "instant"},
]
DUP_REPEATS = 8

#: the adversarial-unique mix: every request is a distinct graph, so
#: every layer (job store, in-flight tickets, fingerprint memo, stage
#: cache) misses
UNIQUE_REQUESTS = [
    {"app": family, "n": seed, "num_gpus": 2, "budget": "instant"}
    for family in ("synth:pipeline", "synth:dag")
    for seed in range(16)
]

#: fingerprint-memo cap used for the flatness assertion — deliberately
#: smaller than len(UNIQUE_REQUESTS) so "bounded" is actually exercised
MEMO_CAP = 16


def _drive(requests):
    """POST ``requests`` from CLIENTS threads against a fresh server;
    returns (service, per-request latencies, wall seconds)."""
    service = MappingService(workers=2)
    service._fingerprint_cap = MEMO_CAP
    server = serve_http(service, port=0)
    url = server.url + "/api/v1/solve"
    latencies = [0.0] * len(requests)
    errors = []

    def client(worker):
        for index in range(worker, len(requests), CLIENTS):
            line = json.dumps(requests[index]).encode()
            post = urllib.request.Request(
                url, data=line, method="POST",
                headers={"X-Tenant": f"bench-{worker}"},
            )
            t0 = time.perf_counter()
            try:
                with urllib.request.urlopen(post, timeout=120) as resp:
                    payload = json.loads(resp.read())
                if payload.get("state") != "done":
                    errors.append(payload)
            except Exception as exc:  # noqa: BLE001 - recorded, re-raised
                errors.append(repr(exc))
            latencies[index] = time.perf_counter() - t0

    threads = [
        threading.Thread(target=client, args=(worker,))
        for worker in range(CLIENTS)
    ]
    started = time.perf_counter()
    try:
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - started
    finally:
        server.stop()
        service.shutdown(wait=True)
    assert not errors, errors
    return service, latencies, wall


def _percentile(sorted_values, q):
    index = min(len(sorted_values) - 1,
                max(0, round(q * (len(sorted_values) - 1))))
    return sorted_values[index]


def _mix_record(requests, unique, service, latencies, wall):
    stats = service.stats()
    ordered = sorted(latencies)
    return {
        "requests": len(requests),
        "unique": unique,
        "clients": CLIENTS,
        "workers": 2,
        "wall_s": wall,
        "throughput_rps": len(requests) / wall,
        "latency_ms": {
            "p50": _percentile(ordered, 0.50) * 1e3,
            "p99": _percentile(ordered, 0.99) * 1e3,
            "max": ordered[-1] * 1e3,
        },
        "solved": stats.solved,
        "dedup_hits": stats.dedup_hits,
        "dedup_ratio": stats.dedup_hits / stats.submitted,
        "fingerprint_memo": {
            "size": len(service._fingerprints),
            "cap": MEMO_CAP,
        },
    }


def test_bench_service(benchmark):
    # -- duplicate-heavy ------------------------------------------------
    dup_requests = DUP_UNIQUE * DUP_REPEATS

    def drive_dup():
        return _drive(dup_requests)

    dup_service, dup_latencies, dup_wall = benchmark.pedantic(
        drive_dup, rounds=1, iterations=1,
    )
    dup = _mix_record(dup_requests, len(DUP_UNIQUE), dup_service,
                      dup_latencies, dup_wall)

    # -- adversarial-unique ---------------------------------------------
    uniq_service, uniq_latencies, uniq_wall = _drive(UNIQUE_REQUESTS)
    uniq = _mix_record(UNIQUE_REQUESTS, len(UNIQUE_REQUESTS),
                       uniq_service, uniq_latencies, uniq_wall)

    record = {
        "schema": "bench-service/v1",
        "mixes": {
            "duplicate_heavy": dup,
            "adversarial_unique": uniq,
        },
    }
    BENCH_PATH.write_text(json.dumps(record, indent=1, sort_keys=True) + "\n")

    print()
    for name, mix in record["mixes"].items():
        print(f"{name:18s} {mix['requests']:3d} reqs "
              f"{mix['throughput_rps']:7.1f} rps  "
              f"p50 {mix['latency_ms']['p50']:6.1f}ms  "
              f"p99 {mix['latency_ms']['p99']:6.1f}ms  "
              f"dedup {mix['dedup_ratio']:.0%}")

    # -- contracts (never timings) --------------------------------------
    # dedup: 48 duplicate-heavy submissions cost exactly 6 solves
    assert dup["solved"] == len(DUP_UNIQUE)
    assert dup["dedup_hits"] == len(dup_requests) - len(DUP_UNIQUE)
    # adversarial-unique: nothing dedups, every request solves ...
    assert uniq["solved"] == len(UNIQUE_REQUESTS)
    assert uniq["dedup_hits"] == 0
    # ... and the fingerprint memo stays flat (LRU bound < uniques)
    assert uniq["fingerprint_memo"]["size"] <= MEMO_CAP
