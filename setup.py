"""Classic setup shim.

The reproduction environment has no network and no `wheel` package, so
PEP 660 editable installs (`pip install -e .`) cannot build a wheel.  This
shim lets `python setup.py develop` (and `pip install -e .` on machines
that do have `wheel`) work from the same pyproject metadata.
"""

from setuptools import setup

setup()
